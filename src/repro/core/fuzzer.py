"""The fuzzing campaign loop shared by MuFuzz and every baseline.

One iteration = one execution of a full transaction sequence against a fresh
fork of the deployed state.  The strategy knobs in
:class:`~repro.core.config.FuzzerConfig` select the paper's components:

* sequence construction/mutation (§IV-A) via
  :class:`~repro.core.sequence.SequenceGenerator`,
* branch-distance seed selection and mask-guided input mutation (§IV-B,
  Algorithms 1–2) via :mod:`repro.core.masking`,
* dynamic energy adjustment (§IV-C, Algorithm 3) via
  :class:`~repro.core.energy.EnergyScheduler`,
* the nine bug oracles (§IV-D) observing every receipt.

Mask probe executions consume campaign budget like any other execution —
the paper's Algorithm 2 also pays per-probe fuzz runs.
"""

from __future__ import annotations

import random
import time

from repro.analysis.dataflow import analyze_contract
from repro.analysis.distance import distances_from_trace
from repro.analysis.prefix import PrefixAnalyzer
from repro.chain.agents import BenignAgent, ReentrantAgent, RejectingAgent
from repro.chain.blockchain import Chain
from repro.chain.transactions import Transaction
from repro.compiler.abi import encode_call, encode_words
from repro.compiler.artifacts import CompiledContract
from repro.compiler.codegen import compile_source
from repro.core.campaign import CampaignResult
from repro.core.config import FuzzerConfig, mufuzz_config
from repro.core.coverage import CoverageTracker
from repro.core.energy import EnergyScheduler
from repro.core.inputs import InputGenerator
from repro.core.masking import MutationMask, SeedMutator, compute_mask
from repro.core.seeds import Seed, SeedQueue, TxCall
from repro.core.sequence import SequenceGenerator
from repro.core.statecache import PrefixStateCache
from repro.evm.trace import ExecutionTrace
from repro.oracles.base import FindingCollector, OracleContext
from repro.oracles.registry import all_oracles

#: pseudo-function names for dispatcher-edge probing transactions
FALLBACK_CALL = "#fallback"
BAD_SELECTOR_CALL = "#badselector"

#: fixed account addresses used by every campaign
DEPLOYER = 0x00D0_0001
USER_1 = 0x00CA_FE01
USER_2 = 0x00CA_FE02
ATTACKER = 0x00A7_7AC0   # reentrant agent
REJECTOR = 0x00E7_7E01   # fallback-reverting agent


class Fuzzer:
    """Runs one campaign on one contract."""

    def __init__(self, artifact: CompiledContract | str,
                 config: FuzzerConfig | None = None,
                 supported_bug_classes=None) -> None:
        if isinstance(artifact, str):
            artifact = compile_source(artifact)
        self.artifact = artifact
        self.config = config if config is not None else mufuzz_config()
        self.rng = random.Random(self.config.rng_seed)
        self.dataflow = analyze_contract(artifact.contract_ast)
        self.prefix = PrefixAnalyzer(artifact.runtime_code)
        self.seqgen = SequenceGenerator(
            artifact.contract_ast, self.dataflow, self.rng,
            self.config.sequence_strategy, self.config.max_sequence_length)
        self.constants = self._harvest_constants()
        self.mutator = SeedMutator(self.rng, self.constants)
        self.scheduler = EnergyScheduler(
            strategy=self.config.energy_strategy, prefix=self.prefix,
            base_energy=self.config.base_energy,
            max_energy=self.config.max_energy)
        self.oracles = all_oracles(supported_bug_classes)
        self.collector = FindingCollector()

        self.queue = SeedQueue()
        self.executions = 0
        self.transactions = 0
        self._global_best_distance: dict = {}
        self._masks: dict = {}
        self._mask_probes = 0
        #: how many queue seeds cover each edge (AFL-style favored retention)
        self._edge_seed_counts: dict = {}
        self.state_cache = (PrefixStateCache(self.config.state_cache_capacity)
                            if self.config.use_state_cache else None)
        self._setup_chain()
        self.coverage = CoverageTracker(artifact=artifact,
                                        address=self.address)
        self.ctx = OracleContext(
            artifact=artifact, address=self.address, deployer=DEPLOYER,
            attacker_addresses=frozenset({ATTACKER, REJECTOR}))

    # -- environment -------------------------------------------------------------

    def _setup_chain(self) -> None:
        chain = Chain(max_steps=self.config.max_steps_per_tx)
        chain.create_account(DEPLOYER)
        chain.create_account(USER_1)
        chain.create_account(USER_2)
        self.reentrant_agent = ReentrantAgent(ATTACKER)
        if self.config.attacker_reentry:
            chain.register_agent(ATTACKER, self.reentrant_agent)
        else:
            chain.register_agent(ATTACKER, BenignAgent())
        chain.register_agent(REJECTOR, RejectingAgent())

        self.accounts = [DEPLOYER, USER_1, USER_2, ATTACKER, REJECTOR]
        self.inputs = InputGenerator(
            self.rng, self.accounts,
            extra_constants=self.constants,
            sender_weights=(0.20, 0.175, 0.125, 0.35, 0.15))

        ctor_args = [self.inputs.value_for_type(t)
                     for t in self.artifact.abi.constructor_inputs]
        deployed = chain.deploy(
            self.artifact, ctor_args=encode_words(ctor_args),
            sender=DEPLOYER, value=self.config.deploy_balance)
        self.address = deployed.address
        self.base_chain = chain
        # journal-based reset point: iterations restore the deployed state
        # in O(touched slots) instead of deep-copying the world every round
        chain.mark_base()

    def _harvest_constants(self) -> tuple:
        """PUSH immediates from the runtime code, used as interesting input
        values (how real smart-contract fuzzers cross magic-value guards)."""
        from repro.analysis.disassembler import disassemble
        values = set()
        for ins in disassemble(self.artifact.runtime_code):
            # PUSH3 and wider: genuine program constants (PUSH1/PUSH2 are
            # dominated by memory offsets and jump labels).
            if ins.operand is not None and ins.size >= 4 \
                    and 2 < ins.operand < (1 << 130):
                values.add(ins.operand)
        return tuple(sorted(values))

    # -- seed construction ----------------------------------------------------------

    def _fresh_seed(self) -> Seed:
        functions = self.seqgen.base_sequence()
        return Seed(calls=[self._fresh_call(name) for name in functions])

    def _fresh_call(self, function: str) -> TxCall:
        if function in (FALLBACK_CALL, BAD_SELECTOR_CALL):
            return TxCall(function=function, args=[], value=0,
                          sender=self.inputs.sender())
        fn = self.artifact.abi.function(function)
        return TxCall(
            function=function,
            args=self.inputs.args_for(fn),
            value=self.inputs.call_value_for(fn),
            sender=self.inputs.sender())

    def _encode_call(self, call: TxCall) -> bytes:
        if call.function == FALLBACK_CALL:
            return b""
        if call.function == BAD_SELECTOR_CALL:
            # fixed unknown selector: encoding must be deterministic so the
            # prefix-state cache and campaign replay stay exact
            return encode_words([0xDEADBEEF])
        return encode_call(self.artifact.abi.function(call.function),
                           call.args)

    # -- execution --------------------------------------------------------------------

    def _execute(self, seed: Seed) -> ExecutionTrace:
        """Run the seed's transaction sequence against the deployed state.

        The base chain is journal-reset to the post-deployment snapshot
        (O(slots touched by the previous iteration), not a deep copy of the
        world).  With ``use_state_cache`` (§VI future-work optimization) the
        longest memoized transaction prefix is skipped instead: its cached
        chain state is forked and only the suffix replays.
        """
        start_at = 0
        chain = None
        merged = None
        if self.state_cache is not None:
            start_at, chain, merged = \
                self.state_cache.longest_prefix(seed.calls)
        if chain is None:
            chain = self.base_chain.reset_to_base()
            merged = ExecutionTrace()

        for index in range(start_at, len(seed.calls)):
            call = seed.calls[index]
            data = self._encode_call(call)
            if self.config.attacker_reentry:
                self.reentrant_agent.arm(data)
            tx = Transaction(
                sender=call.sender, to=self.address, value=call.value,
                data=data, gas=self.config.tx_gas, function=call.function)
            receipt = chain.apply(tx)
            self.transactions += 1
            merged.merge(receipt.trace)
            for oracle in self.oracles:
                self.collector.extend(oracle.on_receipt(receipt, self.ctx))
            if self.state_cache is not None:
                self.state_cache.insert(seed.calls, index + 1, chain, merged)
        self.executions += 1
        return merged

    # -- feedback ------------------------------------------------------------------------

    def _feedback(self, seed: Seed, trace: ExecutionTrace) -> int:
        """Update coverage, distances and seed fitness; returns new edges."""
        new_edges = self.coverage.add_trace(
            trace, step_multiplier=self.config.reexecution_overhead)
        self.scheduler.record(trace, self.address)

        seed.covered_edges = {(pc, taken)
                              for addr, pc, taken in trace.branch_edges
                              if addr == self.address}
        seed.nested_hits = {
            event.pc for event in trace.branches
            if event.address == self.address
            and self._nesting_of(event.pc) >= 1}

        seed.distances = {}
        seed.improved_distance = False
        for key, dist in distances_from_trace(trace).items():
            address, pc, taken = key
            if address != self.address:
                continue
            if (pc, taken) in self.coverage.covered:
                continue
            seed.distances[key] = dist
            best = self._global_best_distance.get(key)
            if best is None or dist < best:
                self._global_best_distance[key] = dist
                seed.improved_distance = True
        return new_edges

    def _nesting_of(self, pc: int) -> int:
        info = self.artifact.branch_info.get(pc)
        return info.nesting if info else 0

    # -- corpus retention --------------------------------------------------------

    def _retain(self, seed: Seed, new_edges: int) -> bool:
        """Add ``seed`` to the queue on new coverage, or when it exercises an
        edge few retained seeds cover (AFL's favored-input heuristic: keeps
        rare-state seeds alive so later mutations can build on them)."""
        rare = any(self._edge_seed_counts.get(edge, 0) < 2
                   for edge in seed.covered_edges)
        if not new_edges and not rare:
            return False
        self.queue.add(seed)
        for edge in seed.covered_edges:
            self._edge_seed_counts[edge] = \
                self._edge_seed_counts.get(edge, 0) + 1
        return True

    # -- seed selection (Algorithm 1, lines 4–13) --------------------------------------------

    def _select_seed(self) -> Seed:
        if self.config.use_distance_feedback and self.rng.random() < 0.5:
            targets = [t for t in self._global_best_distance
                       if (t[1], t[2]) not in self.coverage.covered]
            if targets:
                target = self.rng.choice(targets)
                best = self.queue.best_for_target(target)
                if best is not None:
                    return best
        return self.rng.choice(self.queue.seeds)

    # -- mutation ---------------------------------------------------------------------------------

    def _mutate(self, seed: Seed) -> Seed:
        child = seed.clone()
        if self.rng.random() < self.config.fallback_probability:
            name = self.rng.choice((FALLBACK_CALL, BAD_SELECTOR_CALL))
            pos = self.rng.randint(0, len(child.calls))
            child.calls.insert(pos, self._fresh_call(name))
            return child
        roll = self.rng.random()
        if roll < 0.25 and len(child.calls) >= 1:
            return self._mutate_sequence(child)
        return self._mutate_inputs(seed, child)

    def _mutate_sequence(self, child: Seed) -> Seed:
        regular = [f for f in child.functions
                   if f not in (FALLBACK_CALL, BAD_SELECTOR_CALL)]
        functions = self.seqgen.mutate_sequence(regular)
        existing = {c.function: c for c in child.calls}
        child.calls = [
            existing[name].clone() if name in existing
            else self._fresh_call(name)
            for name in functions]
        return child

    def _mutate_inputs(self, parent: Seed, child: Seed) -> Seed:
        if not child.calls:
            return child
        index = self.rng.randrange(len(child.calls))
        call = child.calls[index]
        if self.rng.random() < 0.15:
            call.sender = self.inputs.sender()

        # Dictionary/typed mutation: resample one argument from the typed
        # generator (which knows the contract's PUSH constants).  All
        # fuzzers share this — it models sFuzz/ConFuzzius value dictionaries.
        if (call.function not in (FALLBACK_CALL, BAD_SELECTOR_CALL)
                and self.rng.random() < 0.3):
            fn = self.artifact.abi.function(call.function)
            if call.args:
                arg_index = self.rng.randrange(len(call.args))
                call.args[arg_index] = self.inputs.value_for_type(
                    fn.inputs[arg_index])
            if fn.payable and self.rng.random() < 0.4:
                call.value = self.inputs.call_value_for(fn)
            return child

        # Algorithm 1 runs the masked stage for qualifying seeds *alongside*
        # the regular mutation stage — mix rather than replace.
        if (self.config.use_mask
                and (parent.nested_hits or parent.improved_distance)
                and self.rng.random() < 0.6):
            mask = self._mask_for(parent, index)
            if mask is not None:
                mutated = self.mutator.masked_mutate(call, mask)
                if mutated is not None:
                    mutated.sender = call.sender
                    child.calls[index] = mutated
                return child

        child.calls[index] = self.mutator.afl_mutate(call)
        child.calls[index].sender = call.sender
        return child

    def _mask_for(self, seed: Seed, call_index: int) -> MutationMask | None:
        """Compute (or reuse) the mutation mask for one call of one seed
        (Algorithm 2).  Probe executions consume campaign budget, so the
        total probe spend is capped at a fraction of the campaign; past the
        cap, uncached masks are skipped (None → regular mutation)."""
        key = (tuple(seed.functions), call_index)
        cached = self._masks.get(key)
        if cached is not None:
            return cached
        cap = int(self.config.iterations * self.config.mask_budget_fraction)
        if self._mask_probes >= cap:
            return None

        target_hits = set(seed.nested_hits)
        baseline = dict(seed.distances)

        def probe(stream: bytes) -> bool:
            if self.executions >= self.config.iterations:
                return True  # budget exhausted: stop restricting
            self._mask_probes += 1
            variant = seed.clone()
            variant.calls[call_index] = \
                variant.calls[call_index].apply_stream(stream)
            trace = self._execute(variant)
            new_edges = self._feedback(variant, trace)
            self._retain(variant, new_edges)
            still_nested = bool(variant.nested_hits & target_hits)
            improved = any(
                variant.distances.get(k, 1 << 260) < baseline[k]
                for k in baseline)
            return still_nested or improved

        call = seed.calls[call_index]
        mask = compute_mask(call.to_stream(), probe, self.rng,
                            probe_limit=self.config.mask_probe_limit)
        self._masks[key] = mask
        return mask

    # -- the campaign ------------------------------------------------------------------------------

    def run(self) -> CampaignResult:
        """Execute the full campaign and return its result."""
        start = time.perf_counter()
        config = self.config

        if not self.artifact.abi.functions:
            return CampaignResult(
                fuzzer=config.name, contract=self.artifact.name,
                coverage=1.0, iterations=0, total_steps=0, wall_time=0.0)

        # Initial population: first a covering set of sequences that calls
        # every external function at least once (one seed per chunk for
        # contracts larger than one sequence), then fresh random seeds.
        initial = [Seed(calls=[self._fresh_call(f) for f in functions])
                   for functions in self.seqgen.cover_sequences()]
        while len(initial) < config.initial_population:
            initial.append(self._fresh_seed())
        for seed in initial:
            if self.executions >= config.iterations:
                break
            trace = self._execute(seed)
            self._feedback(seed, trace)
            self._retain(seed, new_edges=1)  # initial population always kept
            if config.energy_strategy == "dynamic" and not self.scheduler.weights:
                self.scheduler.prefuzz(trace, self.address)

        # main loop
        while self.executions < config.iterations and len(self.queue):
            seed = self._select_seed()
            energy = self.scheduler.energy_for(seed)
            while energy > 0 and self.executions < config.iterations:
                energy -= 1
                child = self._mutate(seed)
                trace = self._execute(child)
                new_edges = self._feedback(child, trace)
                self._retain(child, new_edges)
                if new_edges:
                    energy = min(energy + 1, config.max_energy)

        for oracle in self.oracles:
            self.collector.extend(oracle.finalize(self.ctx))

        last_seed = self.queue.seeds[-1] if len(self.queue) else None
        return CampaignResult(
            fuzzer=config.name,
            contract=self.artifact.name,
            coverage=self.coverage.coverage(),
            iterations=self.executions,
            total_steps=self.coverage.total_steps,
            wall_time=time.perf_counter() - start,
            findings=self.collector.all(),
            curve=list(self.coverage.curve),
            seeds_in_queue=len(self.queue),
            transactions=self.transactions,
            example_sequence=last_seed.functions if last_seed else [],
        )


def fuzz_contract(source_or_artifact, config: FuzzerConfig | None = None,
                  supported_bug_classes=None) -> CampaignResult:
    """One-call convenience: fuzz a contract and return the result."""
    fuzzer = Fuzzer(source_or_artifact, config, supported_bug_classes)
    return fuzzer.run()
