"""The fuzzing campaign facade shared by MuFuzz and every baseline.

One iteration = one execution of a full transaction sequence against a fresh
fork of the deployed state.  The campaign loop itself lives in the staged
engine (:mod:`repro.engine`); ``Fuzzer`` wires the stages together and
keeps the historical public API:

* sequence construction/mutation (§IV-A) via
  :class:`~repro.core.sequence.SequenceGenerator`, applied by the
  :class:`~repro.engine.mutation.MutationPipeline`'s sequence stage,
* branch-distance seed selection and mask-guided input mutation (§IV-B,
  Algorithms 1–2) via :class:`~repro.engine.selection.SeedSelector` and
  the pipeline's masked stage,
* dynamic energy adjustment (§IV-C, Algorithm 3) via
  :class:`~repro.core.energy.EnergyScheduler`,
* the nine bug oracles (§IV-D) observing every receipt,
* favored-edge corpus retention via
  :class:`~repro.engine.retention.RetentionPolicy`.

Every stopping decision routes through the single
:class:`~repro.engine.budget.Budget` (iterations, transactions, wall
clock).  Mask probe executions consume campaign budget like any other
execution — the paper's Algorithm 2 also pays per-probe fuzz runs.

Campaigns are interruptible: ``run(checkpoint_every=N,
checkpoint_sink=...)`` emits a
:class:`~repro.engine.checkpoint.CampaignCheckpoint` every N executions,
and :meth:`Fuzzer.resume` reconstructs the campaign mid-flight with a
byte-exact determinism guarantee (see :mod:`repro.engine.checkpoint`).
"""

from __future__ import annotations

import random
from time import perf_counter as _perf_counter

from repro.analysis.dataflow import analyze_contract
from repro.analysis.surface import SurfaceDataflow, surface_for
from repro.analysis.distance import distances_from_trace
from repro.analysis.prefix import PrefixAnalyzer
from repro.chain.agents import BenignAgent, ReentrantAgent, RejectingAgent
from repro.chain.blockchain import Chain
from repro.chain.transactions import Transaction
from repro.compiler.abi import encode_call, encode_words
from repro.compiler.artifacts import CompiledContract
from repro.compiler.codegen import compile_source
from repro.core.campaign import CampaignResult
from repro.core.config import ENERGY_DYNAMIC, FuzzerConfig, mufuzz_config
from repro.core.coverage import CoverageTracker
from repro.core.energy import EnergyScheduler
from repro.core.inputs import InputGenerator
from repro.core.masking import SeedMutator
from repro.core.seeds import (
    BAD_SELECTOR_CALL,
    FALLBACK_CALL,
    Seed,
    SeedQueue,
    TxCall,
)
from repro.core.sequence import SequenceGenerator
from repro.core.statecache import PrefixStateCache
from repro.engine.budget import Budget
from repro.engine.checkpoint import CampaignCheckpoint, CampaignState
from repro.engine.mutation import MutationPipeline
from repro.engine.retention import RetentionPolicy
from repro.engine.selection import SeedSelector
from repro.evm.trace import EV_BRANCH, ExecutionTrace
from repro.oracles.base import BugClass, FindingCollector, OracleContext
from repro.oracles.bus import OracleBus
from repro.oracles.registry import all_oracles
from repro.telemetry import metrics as _metrics
from repro.telemetry.progress import HEARTBEAT as _HEARTBEAT
from repro.telemetry.spans import span as _span

#: engine-pipeline telemetry: per-stage wall-time spans (these also feed
#: the ``stage`` field heartbeats sample) plus iteration-level counters.
#: Everything here is a no-op singleton while telemetry is disabled.
_T_EXECUTIONS = _metrics.counter("engine.executions")
_T_TRANSACTIONS = _metrics.counter("engine.transactions")
_T_SEQ_LEN = _metrics.histogram("engine.sequence_length",
                                (1, 2, 4, 8, 16, 32))
_T_EXEC_STEPS = _metrics.histogram(
    "engine.steps_per_execution",
    (300, 1_000, 3_000, 10_000, 30_000, 100_000, 300_000))
_S_SELECTION = _span("engine.selection", stage=True)
_S_MUTATION = _span("engine.mutation", stage=True)
_S_EXECUTION = _span("engine.execution", stage=True)
_S_RETENTION = _span("engine.retention", stage=True)

#: oracle dispatch runs once per *transaction* — too hot even for a live
#: span's enter/exit.  It times itself with raw perf_counter calls into
#: plain accumulators (the same cost the disabled path would pay for a
#: no-op context manager) and a snapshot-time collector mirrors the
#: totals into the ``engine.oracle_dispatch`` span.
_S_ORACLES = _span("engine.oracle_dispatch")
_oracle_count = 0
_oracle_seconds = 0.0


def _collect_oracle_span() -> None:
    _S_ORACLES.set_totals(_oracle_count, _oracle_seconds)


_metrics.register_collector(_collect_oracle_span)

#: surface-layer campaign counters: how many oracles the liveness proofs
#: pruned and how many dictionary constants the static harvest fed the
#: mutation pipeline (once per campaign — no-op while telemetry is off)
_T_SURFACE_PRUNED = _metrics.counter("analysis.surface.oracles_pruned")
_T_SURFACE_CONSTANTS = _metrics.counter("analysis.surface.dict_constants")

#: fixed account addresses used by every campaign
DEPLOYER = 0x00D0_0001
USER_1 = 0x00CA_FE01
USER_2 = 0x00CA_FE02
ATTACKER = 0x00A7_7AC0   # reentrant agent
REJECTOR = 0x00E7_7E01   # fallback-reverting agent


class Fuzzer:
    """Runs one campaign on one contract (facade over the staged engine)."""

    def __init__(self, artifact: CompiledContract | str,
                 config: FuzzerConfig | None = None,
                 supported_bug_classes=None) -> None:
        if isinstance(artifact, str):
            artifact = compile_source(artifact)
        self.artifact = artifact
        self.config = config if config is not None else mufuzz_config()
        self.supported_bug_classes = supported_bug_classes
        self.rng = random.Random(self.config.rng_seed)
        self.budget = Budget.from_config(self.config)
        #: the static vulnerability surface (process-cached per bytecode):
        #: liveness proofs gate oracle pruning, the constant harvest feeds
        #: the mutation dictionary, and candidate pcs feed the prefix
        #: analyzer — the facts are computed whether or not pruning is on,
        #: so ``use_surface_pruning`` toggles *only* the oracle drop
        self.surface = surface_for(artifact.runtime_code)
        if artifact.contract_ast is not None:
            self.dataflow = analyze_contract(artifact.contract_ast)
        else:
            # source-absent path: bytecode-level per-selector slot facts
            self.dataflow = SurfaceDataflow(self.surface, artifact.abi)
        self.prefix = PrefixAnalyzer(artifact.runtime_code,
                                     surface=self.surface)
        self.seqgen = SequenceGenerator(
            artifact.contract_ast, self.dataflow, self.rng,
            self.config.sequence_strategy, self.config.max_sequence_length)
        self.constants = self.surface.dictionary_constants
        self.mutator = SeedMutator(self.rng, self.constants)
        self.scheduler = EnergyScheduler(
            strategy=self.config.energy_strategy, prefix=self.prefix,
            base_energy=self.config.base_energy,
            max_energy=self.config.max_energy)
        self.oracles = all_oracles(self._effective_bug_classes())
        self.collector = FindingCollector()

        self.queue = SeedQueue()
        self.retention = RetentionPolicy(self.queue)
        self.state_cache = (PrefixStateCache(self.config.state_cache_capacity)
                            if self.config.use_state_cache else None)
        self._setup_chain()
        self.coverage = CoverageTracker(artifact=artifact,
                                        address=self.address)
        self.selector = SeedSelector(
            self.rng, self.queue, self.coverage, self.address,
            self.config.use_distance_feedback)
        self.pipeline = MutationPipeline(
            self.rng, self.config, self.artifact.abi, self.seqgen,
            self.inputs, self.mutator, self._fresh_call, self.budget,
            self._run_probe)
        self.ctx = OracleContext(
            artifact=artifact, address=self.address, deployer=DEPLOYER,
            attacker_addresses=frozenset({ATTACKER, REJECTOR}))
        #: the streaming oracle bus: oracles receive the trace events they
        #: subscribe to while each transaction executes, and the machine
        #: materializes only the event kinds someone consumes — the
        #: feedback loop needs branches, everything else is oracle-driven.
        #: Surface pruning drops oracles whose bug class the static layer
        #: proved impossible (whole-code opcode absence), shrinking the
        #: mask further; results stay byte-identical by construction.
        dead = (self.surface.dead_set() if self.config.use_surface_pruning
                else frozenset())
        self.bus = OracleBus(self.oracles, self.ctx, self.collector,
                             dead_classes=dead)
        _T_SURFACE_PRUNED.add(len(self.bus.pruned))
        _T_SURFACE_CONSTANTS.add(len(self.constants))
        self.base_chain.event_mask = EV_BRANCH | self.bus.mask
        self.base_chain.oracle_bus = self.bus
        #: loop position; populated by :meth:`run` or :meth:`resume`
        self._state: CampaignState | None = None

    def _effective_bug_classes(self):
        """Intersection of the config's ``bug_classes`` selection and the
        ``supported_bug_classes`` capability set (None = unrestricted)."""
        selected = self.config.bug_classes
        supported = self.supported_bug_classes
        if selected is None and supported is None:
            return None
        if selected is None:
            return set(supported)
        chosen = {BugClass(value) for value in selected}
        if supported is None:
            return chosen
        return chosen & {BugClass(getattr(bc, "value", bc))
                         for bc in supported}

    # -- budget-backed counters (historical attribute names) ---------------------

    @property
    def executions(self) -> int:
        return self.budget.iterations_used

    @property
    def transactions(self) -> int:
        return self.budget.transactions_used

    # -- environment -------------------------------------------------------------

    def _setup_chain(self) -> None:
        chain = Chain(max_steps=self.config.max_steps_per_tx,
                      block_fusion=self.config.use_block_fusion)
        chain.create_account(DEPLOYER)
        chain.create_account(USER_1)
        chain.create_account(USER_2)
        self.reentrant_agent = ReentrantAgent(ATTACKER)
        if self.config.attacker_reentry:
            chain.register_agent(ATTACKER, self.reentrant_agent)
        else:
            chain.register_agent(ATTACKER, BenignAgent())
        chain.register_agent(REJECTOR, RejectingAgent())

        self.accounts = [DEPLOYER, USER_1, USER_2, ATTACKER, REJECTOR]
        self.inputs = InputGenerator(
            self.rng, self.accounts,
            extra_constants=self.constants,
            sender_weights=(0.20, 0.175, 0.125, 0.35, 0.15))

        ctor_args = [self.inputs.value_for_type(t)
                     for t in self.artifact.abi.constructor_inputs]
        deployed = chain.deploy(
            self.artifact, ctor_args=encode_words(ctor_args),
            sender=DEPLOYER, value=self.config.deploy_balance)
        self.address = deployed.address
        self.base_chain = chain
        # journal-based reset point: iterations restore the deployed state
        # in O(touched slots) instead of deep-copying the world every round
        chain.mark_base()

    def _harvest_constants(self) -> tuple:
        """The mutation dictionary: wide PUSH immediates plus constants the
        code compares against input-derived values (how real fuzzers cross
        magic-value guards).  Harvested by the vulnerability surface —
        see :func:`repro.analysis.surface.compute_surface`."""
        return self.surface.dictionary_constants

    # -- seed construction ----------------------------------------------------------

    def _fresh_seed(self) -> Seed:
        functions = self.seqgen.base_sequence()
        return Seed(calls=[self._fresh_call(name) for name in functions])

    def _fresh_call(self, function: str) -> TxCall:
        if function in (FALLBACK_CALL, BAD_SELECTOR_CALL):
            return TxCall(function=function, args=[], value=0,
                          sender=self.inputs.sender())
        fn = self.artifact.abi.function(function)
        return TxCall(
            function=function,
            args=self.inputs.args_for(fn),
            value=self.inputs.call_value_for(fn),
            sender=self.inputs.sender())

    def _encode_call(self, call: TxCall) -> bytes:
        if call.function == FALLBACK_CALL:
            return b""
        if call.function == BAD_SELECTOR_CALL:
            # fixed unknown selector: encoding must be deterministic so the
            # prefix-state cache and campaign replay stay exact
            return encode_words([0xDEADBEEF])
        return encode_call(self.artifact.abi.function(call.function),
                           call.args)

    # -- execution --------------------------------------------------------------------

    def _execute(self, seed: Seed) -> ExecutionTrace:
        """Run the seed's transaction sequence against the deployed state.

        The base chain is journal-reset to the post-deployment snapshot
        (O(slots touched by the previous iteration), not a deep copy of the
        world).  With ``use_state_cache`` (§VI future-work optimization) the
        longest memoized transaction prefix is fast-forwarded instead of
        re-executed: the snapshot tree replays each skipped transaction's
        journal redo delta onto the freshly reset chain, re-dispatches its
        recorded trace through the oracle bus, and charges its budget —
        everything a live execution would have produced except the machine
        steps, so results are byte-identical with the cache on or off.
        """
        global _oracle_count, _oracle_seconds
        with _S_EXECUTION:
            cache = self.state_cache
            chain = self.base_chain.reset_to_base()
            merged = ExecutionTrace()
            start_at = 0
            node = None
            path = ()
            if cache is not None:
                path = cache.match(seed.calls)
                if path:
                    start_at = len(path)
                    node = path[-1]
                    cache.restore(chain, path)
            self.bus.begin_sequence(seed.calls)
            # replay the skipped prefix to the oracles from its recorded
            # traces: cross-transaction oracle state, witnesses, and the
            # transaction budget stay in lockstep with a full execution
            t0 = _perf_counter()
            for prefix_node in path:
                receipt = prefix_node.receipt
                merged.merge(receipt.trace)
                self.budget.note_transaction()
                self.collector.extend(self.bus.replay_transaction(receipt))
            if path:
                _oracle_count += start_at
                _oracle_seconds += _perf_counter() - t0
            for index in range(start_at, len(seed.calls)):
                call = seed.calls[index]
                data = self._encode_call(call)
                if self.config.attacker_reentry:
                    self.reentrant_agent.arm(data)
                tx = Transaction(
                    sender=call.sender, to=self.address, value=call.value,
                    data=data, gas=self.config.tx_gas,
                    function=call.function)
                if cache is not None:
                    journal_mark = chain.world.journal_mark()
                # subscribed oracles stream the trace events of this
                # transaction while it executes; settle their findings now
                receipt = chain.apply(tx)
                self.budget.note_transaction()
                merged.merge(receipt.trace)
                t0 = _perf_counter()
                self.collector.extend(self.bus.end_transaction(receipt))
                _oracle_count += 1
                _oracle_seconds += _perf_counter() - t0
                if cache is not None:
                    node = cache.note(node, call, chain, receipt,
                                      journal_mark)
            self.budget.note_execution()
            _T_EXECUTIONS.inc()
            _T_TRANSACTIONS.add(len(seed.calls) - start_at)
            _T_SEQ_LEN.observe(len(seed.calls))
            _T_EXEC_STEPS.observe(merged.steps)
            _HEARTBEAT.tick(self)
        return merged

    def _run_probe(self, variant: Seed) -> Seed:
        """Execute one mask-probe variant through the full
        execute → feedback → retain cycle (the masked stage's hook)."""
        trace = self._execute(variant)
        new_edges = self._feedback(variant, trace)
        with _S_RETENTION:
            self.retention.retain(variant, new_edges)
        return variant

    # -- feedback ------------------------------------------------------------------------

    def _feedback(self, seed: Seed, trace: ExecutionTrace) -> int:
        """Update coverage, distances and seed fitness; returns new edges."""
        new_edges = self.coverage.add_trace(
            trace, step_multiplier=self.config.reexecution_overhead)
        self.scheduler.record(trace, self.address)

        seed.covered_edges = {(pc, taken)
                              for addr, pc, taken in trace.branch_edges
                              if addr == self.address}
        seed.nested_hits = {
            event.pc for event in trace.branches
            if event.address == self.address
            and self._nesting_of(event.pc) >= 1}

        self.selector.observe(seed, distances_from_trace(trace))
        return new_edges

    def _nesting_of(self, pc: int) -> int:
        info = self.artifact.branch_info.get(pc)
        return info.nesting if info else 0

    # -- the campaign ------------------------------------------------------------------------------

    def run(self, checkpoint_every: int | None = None,
            checkpoint_sink=None) -> CampaignResult:
        """Execute the campaign (or the remainder of a resumed one).

        ``checkpoint_every=N`` emits a
        :class:`~repro.engine.checkpoint.CampaignCheckpoint` to
        ``checkpoint_sink(checkpoint)`` at the first iteration boundary
        after every N executions.  A sink that raises aborts the campaign
        mid-flight — that, or a killed process, is the interruption model;
        :meth:`resume` continues from the last emitted checkpoint.
        """
        if checkpoint_every is not None:
            if checkpoint_every < 1:
                raise ValueError("checkpoint_every must be >= 1")
            if checkpoint_sink is None:
                raise ValueError("checkpoint_every requires a "
                                 "checkpoint_sink callback")
        self.budget.start()
        config = self.config

        if not self.artifact.abi.functions:
            return CampaignResult(
                fuzzer=config.name, contract=self.artifact.name,
                coverage=1.0, iterations=0, total_steps=0, wall_time=0.0)

        state = self._state
        if state is None:
            state = self._state = CampaignState()
            # Initial population: first a covering set of sequences that
            # calls every external function at least once (one seed per
            # chunk for contracts larger than one sequence), then fresh
            # random seeds.
            initial = [Seed(calls=[self._fresh_call(f) for f in functions])
                       for functions in self.seqgen.cover_sequences()]
            while len(initial) < config.initial_population:
                initial.append(self._fresh_seed())
            state.pending_initial = initial

        if state.phase == "init":
            while state.pending_initial and not self.budget.exhausted():
                seed = state.pending_initial.pop(0)
                trace = self._execute(seed)
                self._feedback(seed, trace)
                # initial population always kept
                self.retention.retain(seed, new_edges=1)
                if (config.energy_strategy == ENERGY_DYNAMIC
                        and not self.scheduler.weights):
                    self.scheduler.prefuzz(trace, self.address)
                self._maybe_checkpoint(checkpoint_every, checkpoint_sink)
            if not state.pending_initial:
                state.phase = "main"

        # main loop
        while not self.budget.exhausted() and len(self.queue):
            if state.current_index is None:
                with _S_SELECTION:
                    state.current_index = self.selector.select()
                seed = self.queue.seeds[state.current_index]
                state.energy = self.scheduler.energy_for(seed)
            seed = self.queue.seeds[state.current_index]
            while state.energy > 0 and not self.budget.exhausted():
                state.energy -= 1
                with _S_MUTATION:
                    child = self.pipeline.mutate(seed)
                trace = self._execute(child)
                new_edges = self._feedback(child, trace)
                with _S_RETENTION:
                    self.retention.retain(child, new_edges)
                if new_edges:
                    state.energy = min(state.energy + 1, config.max_energy)
                self._maybe_checkpoint(checkpoint_every, checkpoint_sink)
            if state.energy <= 0:
                state.current_index = None

        self.collector.extend(self.bus.finalize())

        last_seed = self.queue.seeds[-1] if len(self.queue) else None
        return CampaignResult(
            fuzzer=config.name,
            contract=self.artifact.name,
            coverage=self.coverage.coverage(),
            iterations=self.executions,
            total_steps=self.coverage.total_steps,
            wall_time=self.budget.elapsed(),
            findings=self.collector.all(),
            curve=list(self.coverage.curve),
            seeds_in_queue=len(self.queue),
            transactions=self.transactions,
            example_sequence=last_seed.functions if last_seed else [],
        )

    # -- witness replay ----------------------------------------------------------

    def replay(self, finding) -> bool:
        """Re-execute a finding's stored witness against the deployed state.

        The fuzzer's construction is deterministic in ``config.rng_seed``
        (constructor arguments, account set, deployment balance), and every
        campaign iteration starts from the journal-reset base state — so a
        fresh fuzzer built from the campaign's config reproduces exactly
        the state each witness originally ran against.  Returns True when
        the witness re-triggers the finding's dedup key.

        Use a fresh :class:`Fuzzer` per finding: the collector accumulates,
        so replaying several findings on one instance could credit a
        witness with a finding an earlier replay already produced.
        """
        calls = [TxCall.from_dict(call) for call in finding.witness]
        if not calls:
            return False
        self._execute(Seed(calls=calls))
        # whole-campaign oracles (ether freezing) settle in finalize
        self.collector.extend(self.bus.finalize())
        return finding.key in self.collector.findings

    def _maybe_checkpoint(self, every: int | None, sink) -> None:
        if every is None:
            return
        if self.executions - self._state.last_checkpoint >= every:
            self._state.last_checkpoint = self.executions
            sink(CampaignCheckpoint.capture(self))

    # -- interrupt/resume --------------------------------------------------------

    def checkpoint(self) -> CampaignCheckpoint:
        """Snapshot the current campaign state (only meaningful between
        iterations — i.e. from a ``checkpoint_sink`` or after ``run``)."""
        if self._state is None:
            raise ValueError("nothing to checkpoint: campaign not started")
        return CampaignCheckpoint.capture(self)

    @classmethod
    def resume(cls, checkpoint, artifact: CompiledContract | str | None = None,
               ) -> "Fuzzer":
        """Reconstruct a mid-flight campaign from a checkpoint.

        ``artifact`` (compiled contract or MiniSol source) may be omitted
        when the checkpoint embeds its source.  Call :meth:`run` on the
        returned fuzzer to continue; the eventual result is byte-identical
        (modulo ``wall_time``) to an uninterrupted campaign.
        """
        if isinstance(checkpoint, dict):
            checkpoint = CampaignCheckpoint.from_dict(checkpoint)
        if artifact is None:
            if checkpoint.source is None:
                raise ValueError(
                    "checkpoint does not embed contract source; pass the "
                    "artifact explicitly")
            artifact = checkpoint.source
        if isinstance(artifact, str):
            # a source file can hold several contracts: compile the one
            # the checkpoint was taken from, not whichever comes first
            try:
                artifact = compile_source(artifact,
                                          checkpoint.contract or None)
            except KeyError:
                raise ValueError(
                    f"checkpoint belongs to contract "
                    f"{checkpoint.contract!r}, which the given source "
                    f"does not define") from None
        if checkpoint.contract and artifact.name != checkpoint.contract:
            raise ValueError(
                f"checkpoint belongs to contract "
                f"{checkpoint.contract!r}, not {artifact.name!r}")
        config = FuzzerConfig(**checkpoint.config)
        supported = checkpoint.supported_bug_classes
        if supported is not None:
            supported = {BugClass(value) for value in supported}
        fuzzer = cls(artifact, config, supported)
        checkpoint.restore_into(fuzzer)
        return fuzzer


def fuzz_contract(source_or_artifact, config: FuzzerConfig | None = None,
                  supported_bug_classes=None) -> CampaignResult:
    """One-call convenience: fuzz a contract and return the result."""
    fuzzer = Fuzzer(source_or_artifact, config, supported_bug_classes)
    return fuzzer.run()
