"""MuFuzz reproduction: sequence-aware, mask-guided smart-contract fuzzing.

This package reimplements the full system of *MuFuzz: Sequence-Aware
Mutation and Seed Mask Guidance for Blockchain Smart Contract Fuzzing*
(ICDE 2024) together with every substrate it needs offline:

* :mod:`repro.lang` / :mod:`repro.compiler` — a Solidity-subset language
  ("MiniSol") compiled to genuine EVM-subset bytecode with ABI and AST.
* :mod:`repro.evm` / :mod:`repro.chain` — a 256-bit EVM with taint-tracking
  traces, plus accounts, storage, reverts, and reentrancy-capable agents.
* :mod:`repro.analysis` — disassembly, CFG, state-variable data-flow
  (write→read and read-after-write), path-prefix reachability, distances.
* :mod:`repro.core` — the fuzzer: sequence-aware mutation (§IV-A),
  mask-guided seed mutation (§IV-B), dynamic energy adjustment (§IV-C).
* :mod:`repro.oracles` — the nine bug oracles (§IV-D).
* :mod:`repro.baselines` — sFuzz/ConFuzzius/IR-Fuzz/Smartian presets and
  behavioural models of Oyente/Mythril/Osiris/Securify/Slither.
* :mod:`repro.corpus` — deterministic D1/D2/D3 benchmark generators.

Quickstart::

    from repro import fuzz_contract, mufuzz_config
    result = fuzz_contract(source, mufuzz_config(iterations=300))
    print(result.coverage, result.findings)
"""

from repro.compiler import compile_source
from repro.core import (
    CampaignResult,
    Fuzzer,
    FuzzerConfig,
    confuzzius_config,
    fuzz_contract,
    irfuzz_config,
    mufuzz_config,
    sfuzz_config,
    smartian_config,
)
from repro.oracles import BugClass, Finding

__version__ = "1.0.0"

__all__ = [
    "compile_source",
    "Fuzzer",
    "FuzzerConfig",
    "CampaignResult",
    "fuzz_contract",
    "mufuzz_config",
    "sfuzz_config",
    "confuzzius_config",
    "irfuzz_config",
    "smartian_config",
    "BugClass",
    "Finding",
    "__version__",
]
