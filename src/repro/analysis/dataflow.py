"""State-variable data-flow analysis over the MiniSol AST (§IV-A).

For every function the analysis computes:

* ``reads`` / ``writes`` — state variables the function reads/writes,
* ``branch_reads`` — state variables read inside branch conditions
  (if/while/for/require/assert), through one level of local aliasing,
* ``raw_self_deps`` — state variables with a read-after-write dependency
  *within* the function (``invested += x`` style),

and at contract level the write→read ordering edges between functions plus
the set of functions the sequence mutation should execute repeatedly: those
with a RAW self-dependency on a variable that some branch condition reads —
the paper's rule for the Crowdsale ``invest`` function.

Internal calls are resolved to a fixpoint so a public wrapper inherits the
effects of the helpers it calls; modifier bodies are merged into each
function that uses them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang import ast_nodes as ast


@dataclass
class FunctionDataflow:
    """Per-function read/write facts."""

    name: str
    reads: set = field(default_factory=set)
    writes: set = field(default_factory=set)
    branch_reads: set = field(default_factory=set)
    raw_self_deps: set = field(default_factory=set)
    calls: set = field(default_factory=set)  # internal callees

    @property
    def touches_state(self) -> bool:
        return bool(self.reads or self.writes)


@dataclass
class ContractDataflow:
    """Whole-contract data-flow summary."""

    contract: ast.ContractDef
    functions: dict = field(default_factory=dict)  # name -> FunctionDataflow

    @property
    def state_vars(self) -> list:
        return [v.name for v in self.contract.state_vars]

    @property
    def branch_read_vars(self) -> set:
        """State variables read by any branch condition in the contract."""
        out: set = set()
        for df in self.functions.values():
            out |= df.branch_reads
        return out

    def of(self, name: str) -> FunctionDataflow:
        return self.functions[name]

    def write_read_edges(self) -> list:
        """(writer, reader, var) triples over external functions."""
        edges = []
        externals = [fn.name for fn in self.contract.external_functions]
        for writer in externals:
            for reader in externals:
                if writer == reader:
                    continue
                shared = (self.functions[writer].writes
                          & self.functions[reader].reads)
                for var in sorted(shared):
                    edges.append((writer, reader, var))
        return edges

    def repeat_candidates(self) -> set:
        """External functions the sequence mutation should duplicate:
        RAW self-dependency on a variable read by a branch statement."""
        branch_vars = self.branch_read_vars
        out: set = set()
        for fn in self.contract.external_functions:
            df = self.functions[fn.name]
            if df.raw_self_deps & branch_vars:
                out.add(fn.name)
        return out

    def stateful_functions(self) -> list:
        """External functions that touch persistent state, in declaration
        order (the only ones worth fuzzing, per the paper)."""
        return [fn.name for fn in self.contract.external_functions
                if self.functions[fn.name].touches_state]


class _FunctionWalker:
    """Collects data-flow facts from one function body."""

    def __init__(self, state_vars: set) -> None:
        self.state_vars = state_vars
        self.df_reads: set = set()
        self.df_writes: set = set()
        self.branch_reads: set = set()
        self.raw_self: set = set()
        self.calls: set = set()
        #: local name -> state vars its value was derived from
        self.local_taints: dict = {}

    # -- expression reads --------------------------------------------------------

    def expr_reads(self, expr: ast.Expr | None) -> set:
        """State variables (directly or via tainted locals) read by ``expr``."""
        if expr is None:
            return set()
        out: set = set()
        self._expr_reads(expr, out)
        return out

    def _expr_reads(self, expr: ast.Expr, out: set) -> None:
        if isinstance(expr, ast.Ident):
            if expr.name in self.state_vars:
                out.add(expr.name)
            else:
                out |= self.local_taints.get(expr.name, set())
            return
        if isinstance(expr, ast.Index):
            if expr.base in self.state_vars:
                out.add(expr.base)
            self._expr_reads(expr.key, out)
            return
        if isinstance(expr, ast.InternalCall):
            self.calls.add(expr.name)
        for value in vars(expr).values():
            if isinstance(value, ast.Expr):
                self._expr_reads(value, out)
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, ast.Expr):
                        self._expr_reads(item, out)

    # -- statements -----------------------------------------------------------------

    def walk(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            for inner in stmt.statements:
                self.walk(inner)
            return
        if isinstance(stmt, ast.VarDecl):
            taints = self.expr_reads(stmt.init)
            self.df_reads |= taints
            self.local_taints[stmt.name] = set(taints)
            return
        if isinstance(stmt, ast.Assign):
            self._walk_assign(stmt)
            return
        if isinstance(stmt, ast.If):
            cond_reads = self.expr_reads(stmt.cond)
            self.df_reads |= cond_reads
            self.branch_reads |= cond_reads
            self.walk(stmt.then)
            if stmt.otherwise is not None:
                self.walk(stmt.otherwise)
            return
        if isinstance(stmt, ast.While):
            cond_reads = self.expr_reads(stmt.cond)
            self.df_reads |= cond_reads
            self.branch_reads |= cond_reads
            self.walk(stmt.body)
            return
        if isinstance(stmt, ast.For):
            if stmt.init is not None:
                self.walk(stmt.init)
            if stmt.cond is not None:
                cond_reads = self.expr_reads(stmt.cond)
                self.df_reads |= cond_reads
                self.branch_reads |= cond_reads
            if stmt.update is not None:
                self.walk(stmt.update)
            self.walk(stmt.body)
            return
        if isinstance(stmt, (ast.Require, ast.AssertStmt)):
            cond_reads = self.expr_reads(stmt.cond)
            self.df_reads |= cond_reads
            self.branch_reads |= cond_reads
            return
        if isinstance(stmt, ast.Return):
            self.df_reads |= self.expr_reads(stmt.value)
            return
        if isinstance(stmt, ast.ExprStmt):
            self.df_reads |= self.expr_reads(stmt.expr)
            return
        if isinstance(stmt, ast.Transfer):
            self.df_reads |= self.expr_reads(stmt.target)
            self.df_reads |= self.expr_reads(stmt.amount)
            return
        if isinstance(stmt, ast.SelfDestructStmt):
            self.df_reads |= self.expr_reads(stmt.beneficiary)
            return
        if isinstance(stmt, ast.Emit):
            for arg in stmt.args:
                self.df_reads |= self.expr_reads(arg)
            return
        # Placeholder / RevertStmt: nothing to collect.

    def _walk_assign(self, stmt: ast.Assign) -> None:
        rhs_reads = self.expr_reads(stmt.value)
        self.df_reads |= rhs_reads
        target = stmt.target

        if isinstance(target, ast.Ident):
            name = target.name
            if name in self.state_vars:
                self.df_writes.add(name)
                if stmt.op != "=":
                    # compound assignment reads the target too
                    self.df_reads.add(name)
                    self.raw_self.add(name)
                elif name in rhs_reads:
                    self.raw_self.add(name)
            else:
                self.local_taints[name] = set(rhs_reads)
                if stmt.op != "=":
                    self.local_taints[name] |= self.local_taints.get(name,
                                                                     set())
            return

        if isinstance(target, ast.Index):
            self.df_reads |= self.expr_reads(target.key)
            if target.base in self.state_vars:
                self.df_writes.add(target.base)
                if stmt.op != "=":
                    self.df_reads.add(target.base)
                    self.raw_self.add(target.base)
                elif target.base in rhs_reads:
                    self.raw_self.add(target.base)


def _analyze_body(name: str, body: ast.Stmt, state_vars: set
                  ) -> FunctionDataflow:
    walker = _FunctionWalker(state_vars)
    walker.walk(body)
    return FunctionDataflow(
        name=name, reads=walker.df_reads, writes=walker.df_writes,
        branch_reads=walker.branch_reads, raw_self_deps=walker.raw_self,
        calls=walker.calls)


def analyze_contract(contract: ast.ContractDef) -> ContractDataflow:
    """Run the data-flow analysis on every function of ``contract``."""
    state_vars = {v.name for v in contract.state_vars}
    result = ContractDataflow(contract=contract)

    modifier_flows: dict[str, FunctionDataflow] = {}
    for mod in contract.modifiers:
        modifier_flows[mod.name] = _analyze_body(mod.name, mod.body,
                                                 state_vars)

    for fn in contract.functions:
        df = _analyze_body(fn.name, fn.body, state_vars)
        for mod_name in fn.modifiers:
            mod_df = modifier_flows.get(mod_name)
            if mod_df is None:
                continue
            df.reads |= mod_df.reads
            df.writes |= mod_df.writes
            df.branch_reads |= mod_df.branch_reads
            df.raw_self_deps |= mod_df.raw_self_deps
        result.functions[fn.name] = df

    # Propagate effects through internal calls to a fixpoint.
    changed = True
    while changed:
        changed = False
        for df in result.functions.values():
            for callee in list(df.calls):
                callee_df = result.functions.get(callee)
                if callee_df is None:
                    continue
                before = (len(df.reads), len(df.writes),
                          len(df.branch_reads), len(df.raw_self_deps))
                df.reads |= callee_df.reads
                df.writes |= callee_df.writes
                df.branch_reads |= callee_df.branch_reads
                df.raw_self_deps |= callee_df.raw_self_deps
                after = (len(df.reads), len(df.writes),
                         len(df.branch_reads), len(df.raw_self_deps))
                if before != after:
                    changed = True
    return result
