"""Stack-symbolic abstract interpretation over EVM bytecode.

A small constant/taint lattice evaluated per basic block over the existing
:func:`~repro.analysis.disassembler.disassemble` /
:func:`~repro.analysis.cfg.build_cfg` output.  Abstract values are plain
tuples:

* ``("const", v)`` — the exact 256-bit constant ``v`` (PUSH immediates and
  anything folded from them),
* ``("calldata", off)`` — the word loaded from calldata at constant offset
  ``off`` (implicitly calldata-tainted),
* ``("cmpsel", sel)`` — the boolean result of ``EQ(const, calldata@0)``,
  i.e. the MiniSol dispatcher's selector comparison (used to map selectors
  to function-entry pcs),
* ``("unk", tags)`` — anything else, carrying a frozenset of taint tags:
  the strings ``"calldata"``, ``"caller"``, ``"origin"``, ``"callvalue"``,
  ``"balance"``, ``"block"``, ``"callres"``, ``"sha3"`` plus ``("slot", k)``
  pairs for values read from constant storage slot ``k``.

The interpreter runs a worklist to a fixpoint with element-wise stack join
and a per-block visit cap (past the cap, incoming constants are widened to
their taint form, which makes the lattice finite).  Facts accumulate
monotonically across visits: PUSH/compare constant harvests, SLOAD/SSTORE
slot resolution, per-:class:`~repro.oracles.base.BugClass` candidate pcs,
CALL-family value/target facts, and dispatcher selector entries.

**These facts are heuristic guidance, never proofs.**  Everything with a
soundness obligation (oracle pruning) lives in
:mod:`repro.analysis.surface` and relies only on whole-code opcode absence
over the linear disassembly — the abstract facts here feed the mutation
dictionary, sequence ordering, and energy scheduling, where a missed or
spurious fact costs throughput, not findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cfg import CFG, build_cfg
from repro.analysis.disassembler import disassemble
from repro.evm.opcodes import OPCODE_INFO, Op, is_dup, is_push, is_swap

_U256 = (1 << 256) - 1

#: opcodes whose result carries block-environment taint
_BLOCK_OPS = frozenset({Op.TIMESTAMP, Op.NUMBER, Op.COINBASE,
                        Op.DIFFICULTY, Op.GASLIMIT, Op.BLOCKHASH})

#: per-block revisit cap before widening kicks in
_VISIT_LIMIT = 8

#: stack depth cap — MiniSol output stays far below this; it bounds work on
#: adversarial raw bytecode
_STACK_LIMIT = 128

_EMPTY = frozenset()
_UNK = ("unk", _EMPTY)


def _unk(tags: frozenset = _EMPTY) -> tuple:
    return _UNK if not tags else ("unk", tags)


def tags_of(value: tuple) -> frozenset:
    """Taint tags carried by an abstract value."""
    kind = value[0]
    if kind == "const":
        return _EMPTY
    if kind in ("calldata", "cmpsel"):
        return _CALLDATA_TAGS
    return value[1]


_CALLDATA_TAGS = frozenset({"calldata"})


def join_values(a: tuple, b: tuple) -> tuple:
    """Least upper bound of two abstract values."""
    if a == b:
        return a
    return _unk(tags_of(a) | tags_of(b))


def _widen(value: tuple) -> tuple:
    """Drop the constant component, keeping only taint (finite lattice)."""
    if value[0] == "unk":
        return value
    return _unk(tags_of(value))


@dataclass(frozen=True)
class AbsState:
    """Abstract machine state at a block boundary."""

    stack: tuple = ()
    #: coarse one-cell summary of everything MSTOREd so far — MLOAD/SHA3
    #: results carry this union (precise enough for taint, cheap to join)
    mem_tags: frozenset = _EMPTY

    def join(self, other: "AbsState") -> "AbsState":
        a, b = self.stack, other.stack
        if len(a) != len(b):
            # Align from the top of the stack; pad the shorter one with
            # unknowns at the bottom (differing heights only arise on
            # irregular raw bytecode, never on compiler output).
            if len(a) < len(b):
                a = (_UNK,) * (len(b) - len(a)) + a
            else:
                b = (_UNK,) * (len(a) - len(b)) + b
        stack = tuple(join_values(x, y) for x, y in zip(a, b))
        return AbsState(stack=stack, mem_tags=self.mem_tags | other.mem_tags)

    def widened(self) -> "AbsState":
        return AbsState(stack=tuple(_widen(v) for v in self.stack),
                        mem_tags=self.mem_tags)


@dataclass
class CallFact:
    """One CALL/DELEGATECALL site with whatever resolved statically."""

    pc: int
    op: str                       # "call" | "delegatecall"
    value: int | None = None      # constant call value when resolved
    value_tags: tuple = ()        # sorted taint tags on the value word
    target: int | None = None     # constant target address when resolved
    target_tags: tuple = ()       # sorted taint tags on the target word
    gas: int | None = None        # constant forwarded gas when resolved

    def to_dict(self) -> dict:
        return {"pc": self.pc, "op": self.op, "value": self.value,
                "value_tags": list(self.value_tags),
                "target": self.target,
                "target_tags": list(self.target_tags), "gas": self.gas}


@dataclass
class AbstractFacts:
    """Everything one abstract-interpretation pass harvested."""

    #: pc -> PUSH immediate
    push_constants: dict = field(default_factory=dict)
    #: constants compared against tainted operands (mutation dictionary)
    compare_constants: set = field(default_factory=set)
    #: SLOAD pc -> constant slot (None when the slot is computed)
    storage_reads: dict = field(default_factory=dict)
    #: SSTORE pc -> constant slot (None when the slot is computed)
    storage_writes: dict = field(default_factory=dict)
    #: constant slots whose value reaches a JUMPI condition, with the pc
    branch_read_slots: set = field(default_factory=set)  # (jumpi_pc, slot)
    #: (sstore_pc, slot) pairs with a read-after-write self-dependency
    #: (the stored value is tainted by an SLOAD of the same slot)
    self_dep_slots: set = field(default_factory=set)
    #: dispatcher mapping: selector word -> function-entry pc
    selector_entries: dict = field(default_factory=dict)
    #: BugClass value -> set of candidate pcs
    candidates: dict = field(default_factory=dict)
    #: CALL-family sites, keyed by pc (facts refine monotonically)
    calls: dict = field(default_factory=dict)

    def add_candidate(self, bug_class: str, pc: int) -> None:
        self.candidates.setdefault(bug_class, set()).add(pc)


def interpret(code: bytes, cfg: CFG | None = None) -> AbstractFacts:
    """Run the abstract interpreter over ``code`` and return its facts."""
    instructions = disassemble(code)
    if cfg is None:
        cfg = build_cfg(code)
    facts = AbstractFacts()
    for ins in instructions:
        if ins.operand is not None:
            facts.push_constants[ins.pc] = ins.operand
    if not cfg.blocks:
        return facts

    entry = min(cfg.blocks)
    in_states: dict[int, AbsState] = {entry: AbsState()}
    visits: dict[int, int] = {}
    work = [entry]
    while work:
        start = work.pop()
        state = in_states.get(start)
        if state is None:
            continue
        count = visits.get(start, 0) + 1
        visits[start] = count
        if count > _VISIT_LIMIT:
            if count > _VISIT_LIMIT + 1:
                continue
            state = state.widened()
        block = cfg.blocks[start]
        out = _transfer(block, state, facts)
        for succ in block.successors:
            known = in_states.get(succ)
            joined = out if known is None else known.join(out)
            if known is None or joined != known:
                in_states[succ] = joined
                work.append(succ)
    return facts


def transfer_block(block, state: AbsState | None = None,
                   facts: AbstractFacts | None = None) -> AbsState:
    """Abstractly execute one basic block (exposed for property tests)."""
    return _transfer(block, state or AbsState(), facts or AbstractFacts())


def _transfer(block, state: AbsState, facts: AbstractFacts) -> AbsState:
    stack = list(state.stack)
    mem_tags = state.mem_tags

    def pop() -> tuple:
        return stack.pop() if stack else _UNK

    def push(value: tuple) -> None:
        if len(stack) < _STACK_LIMIT:
            stack.append(value)

    for ins in block.instructions:
        op = ins.opcode
        pc = ins.pc

        if is_push(op):
            push(("const", ins.operand))
            continue
        if is_dup(op):
            n = op - 0x80 + 1
            push(stack[-n] if len(stack) >= n else _UNK)
            continue
        if is_swap(op):
            n = op - 0x90 + 1
            if len(stack) >= n + 1:
                stack[-1], stack[-n - 1] = stack[-n - 1], stack[-1]
            continue

        if op in (Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD, Op.EXP,
                  Op.AND, Op.OR, Op.XOR, Op.SHL, Op.SHR):
            a, b = pop(), pop()
            if op in (Op.ADD, Op.SUB, Op.MUL):
                operand_tags = tags_of(a) | tags_of(b)
                if operand_tags:
                    facts.add_candidate("IO", pc)
            push(fold_binary(op, a, b))
            continue

        if op in (Op.LT, Op.GT, Op.SLT, Op.SGT, Op.EQ):
            a, b = pop(), pop()
            _harvest_compare(facts, a, b)
            if op == Op.EQ:
                sel = _dispatch_compare(a, b)
                if sel is not None:
                    push(("cmpsel", sel))
                    continue
                if "balance" in tags_of(a) | tags_of(b):
                    facts.add_candidate("SE", pc)
            if "origin" in tags_of(a) | tags_of(b):
                facts.add_candidate("TO", pc)
            push(fold_binary(op, a, b))
            continue

        if op == Op.ISZERO:
            a = pop()
            if a[0] == "const":
                push(("const", 0 if a[1] else 1))
            else:
                push(_unk(tags_of(a)))
            continue
        if op == Op.NOT:
            a = pop()
            if a[0] == "const":
                push(("const", a[1] ^ _U256))
            else:
                push(_unk(tags_of(a)))
            continue

        if op == Op.CALLDATALOAD:
            off = pop()
            if off[0] == "const":
                push(("calldata", off[1]))
            else:
                push(_unk(tags_of(off) | _CALLDATA_TAGS))
            continue
        if op == Op.CALLDATASIZE:
            # distinct tag: size guards are dispatcher plumbing, and their
            # comparison constants (32, 64, ...) are dictionary noise
            push(_unk(frozenset({"calldatasize"})))
            continue
        if op == Op.CALLER:
            push(_unk(frozenset({"caller"})))
            continue
        if op == Op.ORIGIN:
            facts.add_candidate("TO", pc)
            push(_unk(frozenset({"origin"})))
            continue
        if op == Op.CALLVALUE:
            facts.add_candidate("EF", pc)
            push(_unk(frozenset({"callvalue"})))
            continue
        if op == Op.BALANCE:
            pop()
            facts.add_candidate("SE", pc)
            push(_unk(frozenset({"balance"})))
            continue
        if op in _BLOCK_OPS:
            if op == Op.BLOCKHASH:
                pop()
            facts.add_candidate("BD", pc)
            push(_unk(frozenset({"block"})))
            continue

        if op == Op.SLOAD:
            slot = pop()
            if slot[0] == "const":
                facts.storage_reads[pc] = slot[1]
                push(_unk(frozenset({("slot", slot[1])})))
            else:
                facts.storage_reads[pc] = None
                push(_unk(tags_of(slot)))
            continue
        if op == Op.SSTORE:
            slot, value = pop(), pop()
            if slot[0] == "const":
                facts.storage_writes[pc] = slot[1]
                if ("slot", slot[1]) in tags_of(value):
                    facts.self_dep_slots.add((pc, slot[1]))
            else:
                facts.storage_writes[pc] = None
            continue

        if op == Op.MLOAD:
            pop()
            push(_unk(mem_tags))
            continue
        if op in (Op.MSTORE, Op.MSTORE8):
            pop()
            value = pop()
            mem_tags = mem_tags | tags_of(value)
            continue
        if op == Op.SHA3:
            pop(), pop()
            push(_unk(mem_tags | frozenset({"sha3"})))
            continue

        if op == Op.JUMP:
            pop()
            continue
        if op == Op.JUMPI:
            pop()  # target (statically resolved by the CFG)
            cond = pop()
            if cond[0] == "cmpsel":
                target = _static_taken_target(block)
                if target is not None:
                    facts.selector_entries.setdefault(cond[1], target)
            cond_tags = tags_of(cond)
            if "block" in cond_tags:
                facts.add_candidate("BD", pc)
            for tag in cond_tags:
                if isinstance(tag, tuple) and tag[0] == "slot":
                    facts.branch_read_slots.add((pc, tag[1]))
            continue

        if op == Op.CALL:
            gas, to, value = pop(), pop(), pop()
            pop(), pop(), pop(), pop()
            facts.add_candidate("RE", pc)
            facts.add_candidate("UE", pc)
            facts.calls[pc] = _call_fact(pc, "call", gas, to, value)
            push(_unk(frozenset({"callres"})))
            continue
        if op == Op.DELEGATECALL:
            gas, to = pop(), pop()
            pop(), pop(), pop(), pop()
            facts.add_candidate("UD", pc)
            facts.calls[pc] = _call_fact(pc, "delegatecall", gas, to, None)
            push(_unk(frozenset({"callres"})))
            continue
        if op == Op.SELFDESTRUCT:
            pop()
            facts.add_candidate("US", pc)
            continue

        if op == Op.PC:
            push(("const", pc))
            continue

        # Generic fallback: honour the documented stack arity, push
        # untainted unknowns (ADDRESS, GAS, CREATE, LOG*, terminators, ...).
        info = OPCODE_INFO.get(op)
        if info is not None:
            consumed = []
            for _ in range(info.pops):
                consumed.append(pop())
            for _ in range(info.pushes):
                push(_UNK)
    return AbsState(stack=tuple(stack), mem_tags=mem_tags)


def fold_binary(op: int, a: tuple, b: tuple) -> tuple:
    """Constant-fold a binary op (EVM operand order: ``a`` is stack top).

    Public: the block-fusion compiler (:mod:`repro.evm.fusion`) folds
    adjacent PUSH/op pairs with exactly these value semantics, so the
    abstract interpreter and the fused interpreter can never disagree on
    what a constant expression evaluates to."""
    if a[0] == "const" and b[0] == "const":
        x, y = a[1], b[1]
        if op == Op.ADD:
            return ("const", (x + y) & _U256)
        if op == Op.SUB:
            return ("const", (x - y) & _U256)
        if op == Op.MUL:
            return ("const", (x * y) & _U256)
        if op == Op.DIV:
            return ("const", x // y if y else 0)
        if op == Op.MOD:
            return ("const", x % y if y else 0)
        if op == Op.EXP:
            return ("const", pow(x, y, 1 << 256))
        if op == Op.AND:
            return ("const", x & y)
        if op == Op.OR:
            return ("const", x | y)
        if op == Op.XOR:
            return ("const", x ^ y)
        if op == Op.SHL:
            return ("const", (y << x) & _U256 if x < 256 else 0)
        if op == Op.SHR:
            return ("const", y >> x if x < 256 else 0)
        if op == Op.LT:
            return ("const", 1 if x < y else 0)
        if op == Op.GT:
            return ("const", 1 if x > y else 0)
        if op in (Op.SLT, Op.SGT):
            sx = x - (1 << 256) if x >> 255 else x
            sy = y - (1 << 256) if y >> 255 else y
            if op == Op.SLT:
                return ("const", 1 if sx < sy else 0)
            return ("const", 1 if sx > sy else 0)
        if op == Op.EQ:
            return ("const", 1 if x == y else 0)
    return _unk(tags_of(a) | tags_of(b))


_SIZE_TAGS = frozenset({"calldatasize"})


def _harvest_compare(facts: AbstractFacts, a: tuple, b: tuple) -> None:
    """Record constants compared against tainted values — the guard
    thresholds a fuzzer must hit exactly to flip the comparison.  Pure
    calldata-*size* guards are skipped: their thresholds are word widths,
    not input values."""
    for const, other in ((a, b), (b, a)):
        if const[0] == "const":
            tags = tags_of(other)
            if tags and not tags <= _SIZE_TAGS:
                facts.compare_constants.add(const[1])


def _dispatch_compare(a: tuple, b: tuple) -> int | None:
    """Selector value when this is the dispatcher's ``EQ(sel, calldata@0)``."""
    for const, other in ((a, b), (b, a)):
        if const[0] == "const" and other[0] == "calldata" and other[1] == 0:
            return const[1]
    return None


def _call_fact(pc: int, op: str, gas: tuple, to: tuple,
               value: tuple | None) -> CallFact:
    fact = CallFact(pc=pc, op=op)
    if gas[0] == "const":
        fact.gas = gas[1]
    if to[0] == "const":
        fact.target = to[1]
    else:
        fact.target_tags = tuple(sorted(
            t if isinstance(t, str) else f"slot{t[1]}" for t in tags_of(to)))
    if value is not None:
        if value[0] == "const":
            fact.value = value[1]
        else:
            fact.value_tags = tuple(sorted(
                t if isinstance(t, str) else f"slot{t[1]}"
                for t in tags_of(value)))
    return fact


def _static_taken_target(block) -> int | None:
    """The JUMPI's statically-known taken edge (PUSH immediately before)."""
    if len(block.instructions) < 2:
        return None
    maybe_push = block.instructions[-2]
    if is_push(maybe_push.opcode):
        return maybe_push.operand
    return None
