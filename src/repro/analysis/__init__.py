"""Static and hybrid analyses backing the fuzzer.

* :mod:`repro.analysis.disassembler` — bytecode → instruction stream.
* :mod:`repro.analysis.cfg` — basic blocks and edges over the bytecode.
* :mod:`repro.analysis.dataflow` — AST-level state-variable read/write and
  read-after-write analysis (§IV-A of the paper).
* :mod:`repro.analysis.absint` — stack-symbolic abstract interpretation
  over the CFG: a constant/taint lattice harvesting PUSH/compare
  constants, SLOAD/SSTORE slot resolution, dispatcher selector entries,
  and per-bug-class candidate pcs.
* :mod:`repro.analysis.surface` — the per-contract
  :class:`~repro.analysis.surface.VulnerabilitySurface`: sound
  opcode-absence liveness proofs per bug class (the oracle-pruning gate),
  per-selector storage slot sets (the bytecode-level dataflow used when
  source is absent), and the mutation dictionary; cached process-wide per
  sha256(code).
* :mod:`repro.analysis.prefix` — lightweight path-prefix reachability of
  vulnerable instructions (§IV-C, Algorithm 3 support), fast-pathed by the
  surface's whole-code opcode facts.
* :mod:`repro.analysis.distance` — branch-distance aggregation helpers.

Division of labour between the last two analysis layers: *absint facts are
heuristic guidance* (a missed fact costs throughput), while *surface
liveness verdicts are proofs* (a wrong verdict costs findings) — so
verdicts rest only on whole-code opcode absence over the linear
disassembly, never on abstract interpretation.
"""

from repro.analysis.disassembler import Instruction, disassemble, jumpi_pcs
from repro.analysis.cfg import BasicBlock, CFG, build_cfg
from repro.analysis.dataflow import (
    FunctionDataflow,
    ContractDataflow,
    analyze_contract,
)
from repro.analysis.absint import AbstractFacts, AbsState, interpret
from repro.analysis.surface import (
    SelectorFacts,
    SurfaceDataflow,
    VulnerabilitySurface,
    compute_surface,
    surface_for,
)
from repro.analysis.prefix import PrefixAnalyzer
from repro.analysis.distance import branch_distance_summary

__all__ = [
    "Instruction",
    "disassemble",
    "jumpi_pcs",
    "BasicBlock",
    "CFG",
    "build_cfg",
    "FunctionDataflow",
    "ContractDataflow",
    "analyze_contract",
    "AbstractFacts",
    "AbsState",
    "interpret",
    "SelectorFacts",
    "SurfaceDataflow",
    "VulnerabilitySurface",
    "compute_surface",
    "surface_for",
    "PrefixAnalyzer",
    "branch_distance_summary",
]
