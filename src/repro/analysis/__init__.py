"""Static and hybrid analyses backing the fuzzer.

* :mod:`repro.analysis.disassembler` — bytecode → instruction stream.
* :mod:`repro.analysis.cfg` — basic blocks and edges over the bytecode.
* :mod:`repro.analysis.dataflow` — AST-level state-variable read/write and
  read-after-write analysis (§IV-A of the paper).
* :mod:`repro.analysis.prefix` — lightweight path-prefix reachability of
  vulnerable instructions (§IV-C, Algorithm 3 support).
* :mod:`repro.analysis.distance` — branch-distance aggregation helpers.
"""

from repro.analysis.disassembler import Instruction, disassemble, jumpi_pcs
from repro.analysis.cfg import BasicBlock, CFG, build_cfg
from repro.analysis.dataflow import (
    FunctionDataflow,
    ContractDataflow,
    analyze_contract,
)
from repro.analysis.prefix import PrefixAnalyzer
from repro.analysis.distance import branch_distance_summary

__all__ = [
    "Instruction",
    "disassemble",
    "jumpi_pcs",
    "BasicBlock",
    "CFG",
    "build_cfg",
    "FunctionDataflow",
    "ContractDataflow",
    "analyze_contract",
    "PrefixAnalyzer",
    "branch_distance_summary",
]
