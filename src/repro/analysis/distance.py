"""Branch-distance aggregation helpers (sFuzz feedback, §IV-B)."""

from __future__ import annotations

from repro.evm.trace import ExecutionTrace

#: distance assigned when a branch was never observed at all
UNSEEN_DISTANCE = 1 << 257


def distances_from_trace(trace: ExecutionTrace) -> dict:
    """Minimum observed distance to each *uncovered* branch direction.

    Returns ``{(address, jumpi_pc, desired_taken): distance}`` for every
    branch the trace executed, keyed by the direction it did **not** take,
    with the branch-distance the comparison shadow reported.  A ``None``
    distance (condition not produced by a comparison) maps to 1 — flipping a
    raw boolean is one "step" away, matching sFuzz's handling.
    """
    out: dict = {}
    for event in trace.branches:
        desired = not event.taken
        dist = event.distance_to_flip
        if dist is None:
            dist = 1
        key = (event.address, event.pc, desired)
        if dist < out.get(key, UNSEEN_DISTANCE):
            out[key] = dist
    return out


def branch_distance_summary(traces) -> dict:
    """Aggregate :func:`distances_from_trace` over many traces (min wins)."""
    out: dict = {}
    for trace in traces:
        for key, dist in distances_from_trace(trace).items():
            if dist < out.get(key, UNSEEN_DISTANCE):
                out[key] = dist
    return out


def seed_distance(trace: ExecutionTrace, target) -> int:
    """Distance of one execution to a target branch direction.

    ``target`` is ``(address, jumpi_pc, desired_taken)``.  Returns
    :data:`UNSEEN_DISTANCE` when the execution never reached the JUMPI.
    """
    address, pc, desired = target
    best = UNSEEN_DISTANCE
    for event in trace.branches:
        if event.address != address or event.pc != pc:
            continue
        if event.taken == desired:
            return 0
        dist = event.distance_to_flip
        if dist is None:
            dist = 1
        if dist < best:
            best = dist
    return best
