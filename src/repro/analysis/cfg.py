"""Control-flow graph over EVM bytecode.

Jump targets are resolved statically when the instruction immediately before
a JUMP/JUMPI is a PUSH (the shape the MiniSol compiler always emits for
intra-procedural control flow).  Function-return JUMPs pop a dynamic address
and get no static successor, which is the conservative choice for the
prefix-reachability analysis.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from repro.analysis.disassembler import Instruction, disassemble
from repro.evm.opcodes import Op

#: opcodes that terminate a basic block
_TERMINATORS = frozenset({
    Op.JUMP, Op.JUMPI, Op.STOP, Op.RETURN, Op.REVERT, Op.INVALID,
    Op.SELFDESTRUCT,
})


@dataclass
class BasicBlock:
    """A maximal straight-line instruction run."""

    start: int
    instructions: list = field(default_factory=list)
    successors: list = field(default_factory=list)  # start pcs

    @property
    def end(self) -> int:
        last = self.instructions[-1]
        return last.pc + last.size

    @property
    def terminator(self) -> Instruction:
        return self.instructions[-1]


@dataclass
class CFG:
    """Basic blocks keyed by start pc."""

    blocks: dict = field(default_factory=dict)
    #: sorted block starts for bisect lookup (rebuilt lazily when the block
    #: map grows — ``build_cfg`` mutates ``blocks`` while carving)
    _starts: list = field(default_factory=list, repr=False)

    def block_at(self, pc: int) -> BasicBlock | None:
        """The block whose instruction range contains ``pc``.

        Blocks partition the instruction stream into disjoint pc ranges, so
        the containing block (if any) is the one with the greatest start
        ``<= pc`` — a single bisect probe.  This sits on the
        prefix-reachability hot path and is called once per probed pc.
        """
        starts = self._starts
        if len(starts) != len(self.blocks):
            starts = self._starts = sorted(self.blocks)
        index = bisect_right(starts, pc) - 1
        if index < 0:
            return None
        block = self.blocks[starts[index]]
        return block if pc < block.end else None

    def reachable_opcodes_from(self, start_pc: int) -> set:
        """All opcodes statically reachable from the block containing
        ``start_pc`` (inclusive)."""
        origin = self.block_at(start_pc)
        if origin is None:
            return set()
        seen_blocks: set[int] = set()
        opcodes_seen: set[int] = set()
        work = [origin.start]
        while work:
            bpc = work.pop()
            if bpc in seen_blocks:
                continue
            seen_blocks.add(bpc)
            block = self.blocks.get(bpc)
            if block is None:
                continue
            for ins in block.instructions:
                # For the origin block, only count from start_pc onward.
                if bpc == origin.start and ins.pc < start_pc:
                    continue
                opcodes_seen.add(ins.opcode)
            work.extend(block.successors)
        return opcodes_seen


def build_cfg(code: bytes) -> CFG:
    """Build the CFG of ``code``."""
    instructions = disassemble(code)
    if not instructions:
        return CFG()
    by_pc = {ins.pc: ins for ins in instructions}

    # -- leaders: entry, jump targets, fallthroughs of terminators -----------
    leaders: set[int] = {0}
    prev: Instruction | None = None
    for ins in instructions:
        if ins.opcode == Op.JUMPDEST:
            leaders.add(ins.pc)
        if prev is not None and prev.opcode in _TERMINATORS:
            leaders.add(ins.pc)
        prev = ins

    # -- carve blocks ----------------------------------------------------------
    cfg = CFG()
    current: BasicBlock | None = None
    for ins in instructions:
        if ins.pc in leaders or current is None:
            current = BasicBlock(start=ins.pc)
            cfg.blocks[ins.pc] = current
        current.instructions.append(ins)
        if ins.opcode in _TERMINATORS:
            current = None

    # -- edges --------------------------------------------------------------------
    ordered = sorted(cfg.blocks)
    next_block = {pc: ordered[i + 1] for i, pc in enumerate(ordered[:-1])}
    for pc, block in cfg.blocks.items():
        term = block.terminator
        target = _static_target(block)
        if term.opcode == Op.JUMP:
            if target is not None:
                block.successors.append(target)
        elif term.opcode == Op.JUMPI:
            if target is not None:
                block.successors.append(target)
            fall = term.pc + term.size
            if fall in cfg.blocks:
                block.successors.append(fall)
        elif term.opcode in (Op.STOP, Op.RETURN, Op.REVERT, Op.INVALID,
                             Op.SELFDESTRUCT):
            pass
        else:
            # Block ended because the next instruction is a leader.
            fall = next_block.get(pc)
            if fall is not None:
                block.successors.append(fall)
    return cfg


def _static_target(block: BasicBlock) -> int | None:
    """Jump target when the penultimate instruction is a PUSH."""
    if len(block.instructions) < 2:
        return None
    maybe_push = block.instructions[-2]
    if 0x60 <= maybe_push.opcode <= 0x7F:
        return maybe_push.operand
    return None
