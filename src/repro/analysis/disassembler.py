"""EVM bytecode disassembler."""

from __future__ import annotations

from dataclasses import dataclass

from repro.evm import opcodes
from repro.evm.opcodes import Op


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction."""

    pc: int
    opcode: int
    operand: int | None = None  # PUSH immediate

    @property
    def name(self) -> str:
        return opcodes.mnemonic(self.opcode)

    @property
    def size(self) -> int:
        if opcodes.is_push(self.opcode):
            return 1 + opcodes.push_width(self.opcode)
        return 1

    def __str__(self) -> str:
        if self.operand is not None:
            return f"{self.pc:#06x}: {self.name} {self.operand:#x}"
        return f"{self.pc:#06x}: {self.name}"


def disassemble(code: bytes) -> list[Instruction]:
    """Decode ``code`` into an instruction list (PUSH data skipped over)."""
    out: list[Instruction] = []
    i = 0
    n = len(code)
    while i < n:
        op = code[i]
        if opcodes.is_push(op):
            width = opcodes.push_width(op)
            # EVM spec: immediate bytes past end-of-code read as zero
            # (right-padded), matching the machine's decoder.
            imm = code[i + 1: i + 1 + width].ljust(width, b"\x00")
            out.append(Instruction(pc=i, opcode=op,
                                   operand=int.from_bytes(imm, "big")))
            i += 1 + width
        else:
            out.append(Instruction(pc=i, opcode=op))
            i += 1
    return out


def jumpi_pcs(code: bytes) -> list[int]:
    """Program counters of every JUMPI in ``code``."""
    return [ins.pc for ins in disassemble(code) if ins.opcode == Op.JUMPI]


def format_disassembly(code: bytes) -> str:
    """Human-readable listing, one instruction per line."""
    return "\n".join(str(ins) for ins in disassemble(code))
