"""Lightweight path-prefix analysis (§IV-C, Algorithm 3 support).

The dynamic-energy scheduler needs two facts about each branch on an
exercised path:

1. its *nested score* — how many branch instructions precede it on the path
   prefix (Algorithm 3, lines 6–10), and
2. whether a *vulnerable instruction* (``CALL``, ``DELEGATECALL``,
   ``TIMESTAMP``, ``SELFDESTRUCT``, ...) is reachable from the branch
   (lines 11–15), computed here as static forward reachability over the CFG
   from either successor of the JUMPI — the "lightweight abstract
   interpreter" of the paper, without a full symbolic store.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.cfg import CFG, build_cfg
from repro.evm.opcodes import Op

#: Instructions the paper treats as potentially vulnerable (§IV-C mentions
#: call.value and block.timestamp; we include every opcode an oracle keys on).
VULNERABLE_OPCODES = frozenset({
    Op.CALL, Op.DELEGATECALL, Op.SELFDESTRUCT,
    Op.TIMESTAMP, Op.NUMBER, Op.BALANCE, Op.ORIGIN,
})


@dataclass(frozen=True)
class BranchReachability:
    """Which vulnerable opcodes each JUMPI direction can reach."""

    taken: frozenset
    fallthrough: frozenset

    @property
    def any_vulnerable(self) -> bool:
        return bool(self.taken or self.fallthrough)


_NO_REACH = BranchReachability(taken=frozenset(), fallthrough=frozenset())


class PrefixAnalyzer:
    """Per-contract cache of CFG reachability used by the energy scheduler.

    When a :class:`~repro.analysis.surface.VulnerabilitySurface` is
    supplied, two of its whole-code facts short-circuit the per-branch
    work: if no vulnerable opcode exists anywhere in the code, every
    reachability query is the empty set without a single CFG walk; and
    per-bug-class candidate pcs become queryable via
    :meth:`candidate_pcs`.
    """

    def __init__(self, runtime_code: bytes, surface=None) -> None:
        self.cfg: CFG = build_cfg(runtime_code)
        self.surface = surface
        self._cache: dict[int, BranchReachability] = {}
        #: whole-code absence proof: reachable ⊆ present, so an empty
        #: intersection here makes every per-branch BFS pointless
        self._any_vulnerable = (
            surface is None
            or bool(frozenset(surface.opcodes) & VULNERABLE_OPCODES))

    def candidate_pcs(self, bug_class) -> tuple:
        """Surface-derived candidate pcs for ``bug_class`` (empty without
        a surface)."""
        if self.surface is None:
            return ()
        return self.surface.candidates_for(bug_class)

    def reachability(self, jumpi_pc: int) -> BranchReachability:
        """Vulnerable-opcode reachability for the JUMPI at ``jumpi_pc``."""
        if not self._any_vulnerable:
            return _NO_REACH
        cached = self._cache.get(jumpi_pc)
        if cached is not None:
            return cached
        block = self.cfg.block_at(jumpi_pc)
        taken: frozenset = frozenset()
        fallthrough: frozenset = frozenset()
        if block is not None and block.terminator.pc == jumpi_pc:
            succs = block.successors
            # build_cfg appends the static jump target first, fallthrough second
            if len(succs) >= 1:
                taken = frozenset(
                    self.cfg.reachable_opcodes_from(succs[0])
                    & VULNERABLE_OPCODES)
            if len(succs) >= 2:
                fallthrough = frozenset(
                    self.cfg.reachable_opcodes_from(succs[1])
                    & VULNERABLE_OPCODES)
        result = BranchReachability(taken=taken, fallthrough=fallthrough)
        self._cache[jumpi_pc] = result
        return result

    def vulnerable_reachable(self, jumpi_pc: int, taken: bool) -> frozenset:
        """Vulnerable opcodes reachable in the ``taken`` direction."""
        reach = self.reachability(jumpi_pc)
        return reach.taken if taken else reach.fallthrough

    def nested_scores(self, branch_path) -> dict:
        """Nested score per branch pc along one exercised path.

        ``branch_path`` is the ordered list of
        :class:`~repro.evm.trace.BranchEvent` from a pre-fuzz run.  The score
        of the i-th branch is the number of branch instructions on its prefix
        (itself included), exactly Algorithm 3's ``nested_score`` counter.
        """
        scores: dict[int, int] = {}
        count = 0
        for event in branch_path:
            count += 1
            # Keep the highest score seen (deepest occurrence on any prefix).
            if scores.get(event.pc, 0) < count:
                scores[event.pc] = count
        return scores
