"""Per-contract vulnerability surface: what can possibly fire, and where.

:func:`compute_surface` combines the linear disassembly with one
abstract-interpretation pass (:mod:`repro.analysis.absint`) into a
:class:`VulnerabilitySurface`:

* **liveness** — which of the nine bug classes can possibly fire in this
  bytecode, with a human-readable proof for every ``dead`` verdict,
* **per-selector storage facts** — read/write/branch-read slot sets per
  external function, the bytecode-level replacement for the AST dataflow
  when source is absent (:class:`SurfaceDataflow`),
* **mutation dictionary** — PUSH immediates plus constants the code
  compares against tainted (input-derived) values,
* **candidate pcs** — per bug class, the program points an oracle for that
  class could trigger on (consumed by the energy scheduler's prefix
  analysis).

The soundness contract
----------------------

Liveness verdicts gate oracle pruning, so a wrong ``dead`` verdict is a
lost finding.  Every verdict therefore rests **only on whole-code opcode
absence over the linear disassembly** — never on reachability, constant
propagation, or any other abstract fact.  The EVM decodes instructions
linearly from pc 0 (exactly like :func:`repro.evm.analysis.analyze_code`),
so an opcode byte absent from the linear decode stream can never execute;
absence of CALL really does prove no CallEvent can ever be emitted at this
address.  The one deliberate asymmetry: when DELEGATECALL is present,
foreign code can run under this contract's address, so every verdict except
UD/EF (whose proofs don't depend on what a delegate does) is forced live.

Surfaces are cached process-wide per sha256(code), beside (and shaped
like) :mod:`repro.evm.analysis`'s code-analysis LRU.
"""

from __future__ import annotations

import hashlib
import time
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.analysis.absint import AbstractFacts, interpret
from repro.analysis.cfg import CFG, build_cfg
from repro.analysis.disassembler import disassemble
from repro.evm.opcodes import Op, mnemonic
from repro.telemetry import metrics as _metrics

#: the nine bug-class codes, in oracle-registry order (plain strings so
#: this module never imports the oracle package — oracles import analysis)
BUG_CLASS_CODES = ("BD", "UD", "EF", "IO", "RE", "US", "SE", "TO", "UE")

#: opcodes whose result carries block-environment taint (BD trigger inputs)
_BLOCK_OPS = frozenset({Op.TIMESTAMP, Op.NUMBER, Op.COINBASE,
                        Op.DIFFICULTY, Op.GASLIMIT, Op.BLOCKHASH})
#: opcodes that can move ether out of the contract (EF's escape hatches)
_SEND_OPS = frozenset({Op.CALL, Op.DELEGATECALL, Op.SELFDESTRUCT})
#: wrapping-arithmetic opcodes the overflow oracle observes
_ARITH_OPS = frozenset({Op.ADD, Op.SUB, Op.MUL})

#: mutation-dictionary bounds, matching the historical PUSH harvest: skip
#: tiny constants the interesting-value pools already cover, and huge
#: bitmask-like words
_DICT_MIN = 2
_DICT_MAX = 1 << 130


@dataclass(frozen=True)
class SelectorFacts:
    """Bytecode-level dataflow facts for one external function."""

    selector: int
    entry_pc: int
    reads: tuple = ()         # constant slots SLOADed in the body
    writes: tuple = ()        # constant slots SSTOREd in the body
    branch_reads: tuple = ()  # constant slots feeding a JUMPI condition
    self_deps: tuple = ()     # slots with a read-after-write self-dep

    def to_dict(self) -> dict:
        return {"selector": self.selector, "entry_pc": self.entry_pc,
                "reads": list(self.reads), "writes": list(self.writes),
                "branch_reads": list(self.branch_reads),
                "self_deps": list(self.self_deps)}


@dataclass(frozen=True)
class VulnerabilitySurface:
    """Everything the static layer proved or harvested for one bytecode."""

    code_size: int
    instruction_count: int
    #: opcode bytes present in the linear disassembly
    opcodes: frozenset
    #: bug-class codes that can possibly fire, registry order
    live: tuple
    #: bug-class codes proved impossible, registry order
    dead: tuple
    #: dead class code -> opcode-absence proof (human-readable)
    proofs: dict
    #: selector -> :class:`SelectorFacts`
    selectors: dict
    #: merged mutation dictionary (PUSH harvest + compare harvest), sorted
    dictionary_constants: tuple
    #: constants compared against tainted operands, sorted
    compare_constants: tuple
    #: bug-class code -> sorted candidate pcs
    candidate_pcs: dict
    #: CALL-family site facts as dicts, sorted by pc
    calls: tuple
    #: constant storage slots read / written anywhere in the code
    read_slots: tuple
    write_slots: tuple
    #: analysis wall time (diagnostic only — excluded from to_dict so the
    #: serialized report stays deterministic)
    analysis_seconds: float = field(default=0.0, compare=False)

    def dead_set(self) -> frozenset:
        """The proved-impossible classes as a frozenset of codes."""
        return frozenset(self.dead)

    def is_live(self, bug_class) -> bool:
        """Can an oracle for ``bug_class`` (code or enum) possibly fire?"""
        return getattr(bug_class, "value", bug_class) not in self.proofs

    def candidates_for(self, bug_class) -> tuple:
        """Sorted candidate pcs for ``bug_class`` (code or enum)."""
        code = getattr(bug_class, "value", bug_class)
        return self.candidate_pcs.get(code, ())

    def to_dict(self) -> dict:
        """Deterministic wire form (the ``repro analyze --json`` report)."""
        return {
            "code_size": self.code_size,
            "instruction_count": self.instruction_count,
            "opcodes": sorted(mnemonic(op) for op in self.opcodes),
            "live": list(self.live),
            "dead": list(self.dead),
            "proofs": dict(sorted(self.proofs.items())),
            "selectors": {format(sel, "#010x"): facts.to_dict()
                          for sel, facts in sorted(self.selectors.items())},
            "dictionary_constants": list(self.dictionary_constants),
            "compare_constants": list(self.compare_constants),
            "candidate_pcs": {code: list(pcs) for code, pcs
                              in sorted(self.candidate_pcs.items())},
            "calls": [dict(c) for c in self.calls],
            "read_slots": list(self.read_slots),
            "write_slots": list(self.write_slots),
        }


def _liveness_proofs(ops: frozenset) -> dict:
    """Opcode-absence proofs per dead class; see the module docstring."""
    proofs: dict[str, str] = {}
    delegates = Op.DELEGATECALL in ops
    if not delegates:
        proofs["UD"] = "no DELEGATECALL in code"
    sends = sorted(mnemonic(op) for op in (ops & _SEND_OPS))
    if sends:
        proofs["EF"] = (f"ether can leave via {'/'.join(sends)} — "
                        "freeze requires a contract with no send opcode")
    if delegates:
        # Foreign code can execute under this address; nothing else is
        # provable from this bytecode alone.
        return proofs
    if Op.CALL not in ops:
        proofs["RE"] = "no CALL in code"
        proofs["UE"] = "no CALL in code"
    if Op.SELFDESTRUCT not in ops:
        proofs["US"] = "no SELFDESTRUCT in code"
    if not ops & _ARITH_OPS:
        proofs["IO"] = "no ADD/SUB/MUL in code"
    if Op.BALANCE not in ops:
        proofs["SE"] = "no BALANCE in code"
    elif Op.EQ not in ops:
        proofs["SE"] = "no EQ in code"
    if Op.ORIGIN not in ops:
        proofs["TO"] = "no ORIGIN in code"
    block_ops = ops & _BLOCK_OPS
    if not block_ops:
        proofs["BD"] = "no block-environment opcode in code"
    elif Op.JUMPI not in ops and Op.CALL not in ops:
        proofs["BD"] = "no JUMPI or CALL to consume a block-tainted value"
    return proofs


def _reachable_block_starts(cfg: CFG, entry_pc: int) -> frozenset:
    """Start pcs of every block statically reachable from ``entry_pc``."""
    origin = cfg.block_at(entry_pc)
    if origin is None:
        return frozenset()
    seen: set[int] = set()
    work = [origin.start]
    while work:
        start = work.pop()
        if start in seen:
            continue
        seen.add(start)
        block = cfg.blocks.get(start)
        if block is not None:
            work.extend(block.successors)
    return frozenset(seen)


def _selector_facts(cfg: CFG, facts: AbstractFacts) -> dict:
    """Aggregate pc-level storage facts into per-selector slot sets."""
    selectors: dict[int, SelectorFacts] = {}
    for selector, entry_pc in facts.selector_entries.items():
        reachable = _reachable_block_starts(cfg, entry_pc)

        def _in_body(pc: int) -> bool:
            block = cfg.block_at(pc)
            return block is not None and block.start in reachable

        reads = {slot for pc, slot in facts.storage_reads.items()
                 if slot is not None and _in_body(pc)}
        writes = {slot for pc, slot in facts.storage_writes.items()
                  if slot is not None and _in_body(pc)}
        branch_reads = {slot for pc, slot in facts.branch_read_slots
                        if _in_body(pc)}
        self_deps = {slot for pc, slot in facts.self_dep_slots
                     if _in_body(pc)}
        selectors[selector] = SelectorFacts(
            selector=selector, entry_pc=entry_pc,
            reads=tuple(sorted(reads)), writes=tuple(sorted(writes)),
            branch_reads=tuple(sorted(branch_reads)),
            self_deps=tuple(sorted(self_deps)))
    return selectors


def compute_surface(code: bytes) -> VulnerabilitySurface:
    """Analyze ``code`` from scratch (use :func:`surface_for` for the
    cached entry point)."""
    started = time.perf_counter()
    instructions = disassemble(code)
    ops = frozenset(ins.opcode for ins in instructions)
    cfg = build_cfg(code)
    facts = interpret(code, cfg)

    proofs = _liveness_proofs(ops)
    dead = tuple(c for c in BUG_CLASS_CODES if c in proofs)
    live = tuple(c for c in BUG_CLASS_CODES if c not in proofs)

    push_harvest = {ins.operand for ins in instructions
                    if ins.operand is not None and ins.size >= 4
                    and _DICT_MIN < ins.operand < _DICT_MAX}
    compare_harvest = {v for v in facts.compare_constants
                       if _DICT_MIN < v < _DICT_MAX}

    candidate_pcs = {code_: tuple(sorted(pcs))
                     for code_, pcs in sorted(facts.candidates.items())}
    read_slots = {slot for slot in facts.storage_reads.values()
                  if slot is not None}
    write_slots = {slot for slot in facts.storage_writes.values()
                   if slot is not None}

    return VulnerabilitySurface(
        code_size=len(code),
        instruction_count=len(instructions),
        opcodes=ops,
        live=live,
        dead=dead,
        proofs=proofs,
        selectors=_selector_facts(cfg, facts),
        dictionary_constants=tuple(sorted(push_harvest | compare_harvest)),
        compare_constants=tuple(sorted(facts.compare_constants)),
        candidate_pcs=candidate_pcs,
        calls=tuple(fact.to_dict() for _, fact in sorted(facts.calls.items())),
        read_slots=tuple(sorted(read_slots)),
        write_slots=tuple(sorted(write_slots)),
        analysis_seconds=time.perf_counter() - started,
    )


# -- process-level surface cache (same shape as evm.analysis's LRU) ------------

#: one campaign analyzes one contract, but long-lived pool workers fuzz
#: many back to back; sized like the code-analysis cache
CACHE_CAPACITY = 128

_cache: OrderedDict[bytes, VulnerabilitySurface] = OrderedDict()
#: identity fast path — code bytes live in stable objects
#: (``artifact.runtime_code``), and the memo entry pins the id by holding
#: the bytes
_id_memo: dict[int, tuple] = {}
_ID_MEMO_CAPACITY = 64
_hits = 0
_misses = 0
_seconds = 0.0


def surface_for(code: bytes) -> VulnerabilitySurface:
    """The (cached) vulnerability surface of ``code``."""
    global _hits, _misses, _seconds
    memo = _id_memo.get(id(code))
    if memo is not None and memo[0] is code:
        _hits += 1
        return memo[1]
    key = hashlib.sha256(code).digest()
    entry = _cache.get(key)
    if entry is not None:
        _hits += 1
        _cache.move_to_end(key)
    else:
        _misses += 1
        entry = compute_surface(code)
        _seconds += entry.analysis_seconds
        _cache[key] = entry
        while len(_cache) > CACHE_CAPACITY:
            _cache.popitem(last=False)
    if len(_id_memo) >= _ID_MEMO_CAPACITY:
        _id_memo.clear()
    _id_memo[id(code)] = (code, entry)
    return entry


def cache_stats() -> dict:
    """Hit/miss counters and current size (tests and benches)."""
    return {"hits": _hits, "misses": _misses, "entries": len(_cache),
            "seconds": _seconds}


def clear_cache() -> None:
    """Drop every cached surface and reset the counters."""
    global _hits, _misses, _seconds
    _cache.clear()
    _id_memo.clear()
    _hits = 0
    _misses = 0
    _seconds = 0.0


#: telemetry mirrors, filled at snapshot time from the module counters
#: (surface_for is called once per campaign — cheap — but the collector
#: idiom keeps the disabled path free and matches evm.analysis)
_T_HITS = _metrics.counter("analysis.surface_cache.hits")
_T_MISSES = _metrics.counter("analysis.surface_cache.misses")
_T_SECONDS = _metrics.gauge("analysis.surface.seconds_total")


def _collect_surface_counters() -> None:
    _T_HITS.set_total(_hits)
    _T_MISSES.set_total(_misses)
    _T_SECONDS.set_value(_seconds)


_metrics.register_collector(_collect_surface_counters)


# -- bytecode-level dataflow adapter -------------------------------------------


class SurfaceDataflow:
    """Drop-in replacement for
    :class:`~repro.analysis.dataflow.ContractDataflow` built from bytecode
    facts alone — the path the sequence generator takes when no MiniSol
    source (and hence no AST) is available.

    Storage slots stand in for state-variable names (``"slot0"``, ...);
    function names come from the ABI, matched to dispatcher entries by
    selector.  Write-before-read ordering, RAW-repeat candidates, and
    branch-read sets all carry over with the same semantics the AST
    analysis provides, just at slot rather than variable granularity.
    """

    def __init__(self, surface: VulnerabilitySurface, abi) -> None:
        from repro.analysis.dataflow import FunctionDataflow

        self.surface = surface
        self.abi = abi
        self._externals: list[str] = []
        self.functions: dict[str, FunctionDataflow] = {}
        for fn in abi.functions:
            facts = surface.selectors.get(fn.selector)
            self._externals.append(fn.name)
            if facts is None:
                self.functions[fn.name] = FunctionDataflow(name=fn.name)
                continue
            self.functions[fn.name] = FunctionDataflow(
                name=fn.name,
                reads={_slot_name(s) for s in facts.reads},
                writes={_slot_name(s) for s in facts.writes},
                branch_reads={_slot_name(s) for s in facts.branch_reads},
                raw_self_deps={_slot_name(s) for s in facts.self_deps},
            )

    @property
    def state_vars(self) -> list:
        slots = set(self.surface.read_slots) | set(self.surface.write_slots)
        return [_slot_name(s) for s in sorted(slots)]

    @property
    def branch_read_vars(self) -> set:
        out: set = set()
        for df in self.functions.values():
            out |= df.branch_reads
        return out

    def external_names(self) -> list:
        """External function names in ABI (declaration) order."""
        return list(self._externals)

    def of(self, name: str):
        return self.functions[name]

    def write_read_edges(self) -> list:
        """(writer, reader, slot) triples over external functions."""
        edges = []
        for writer in self._externals:
            for reader in self._externals:
                if writer == reader:
                    continue
                shared = (self.functions[writer].writes
                          & self.functions[reader].reads)
                for var in sorted(shared):
                    edges.append((writer, reader, var))
        return edges

    def repeat_candidates(self) -> set:
        """Functions with a RAW self-dependency on a branch-read slot."""
        branch_vars = self.branch_read_vars
        return {name for name in self._externals
                if self.functions[name].raw_self_deps & branch_vars}

    def stateful_functions(self) -> list:
        return [name for name in self._externals
                if self.functions[name].touches_state]


def _slot_name(slot: int) -> str:
    return f"slot{slot}"
