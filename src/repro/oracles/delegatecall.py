"""Unprotected delegatecall oracle (UD).

§IV-D: the trace contains a DELEGATECALL; the enclosing function carries no
modifier-style caller guard; and the delegatecall's target is influenced by
function arguments (calldata taint) — i.e. an attacker chooses the code that
runs with the victim's storage.
"""

from __future__ import annotations

from repro.evm.trace import Taint
from repro.oracles.base import BugClass, Finding, Oracle, OracleContext


class UnprotectedDelegatecallOracle(Oracle):
    bug_class = BugClass.UD

    def on_receipt(self, receipt, ctx: OracleContext):
        for event in receipt.trace.calls:
            if event.kind != "delegatecall" or event.address != ctx.address:
                continue
            attacker_controlled = Taint.CALLDATA in event.target_taints
            if attacker_controlled and not event.guarded:
                yield Finding(
                    bug_class=self.bug_class,
                    contract=ctx.artifact.name,
                    pc=event.pc,
                    line=ctx.line_of(event.pc),
                    description="delegatecall target comes from calldata and "
                                "the function has no caller guard",
                )
