"""Unprotected delegatecall oracle (UD).

§IV-D: the trace contains a DELEGATECALL; the enclosing function carries no
modifier-style caller guard; and the delegatecall's target is influenced by
function arguments (calldata taint) — i.e. an attacker chooses the code that
runs with the victim's storage.
"""

from __future__ import annotations

from repro.evm.trace import EV_CALL, Taint
from repro.oracles.base import BugClass, BufferedOracle, OracleContext


class UnprotectedDelegatecallOracle(BufferedOracle):
    bug_class = BugClass.UD
    subscriptions = EV_CALL
    severity = "high"
    confidence = 0.9

    def on_event(self, event, ctx: OracleContext) -> None:
        if event.kind != "delegatecall" or event.address != ctx.address:
            return
        attacker_controlled = Taint.CALLDATA in event.target_taints
        if attacker_controlled and not event.guarded:
            self._found.append(self.finding(
                ctx, event.pc,
                "delegatecall target comes from calldata and the "
                "function has no caller guard"))
