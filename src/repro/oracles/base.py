"""Oracle infrastructure: bug classes, findings, and the oracle protocol.

Oracles are *streaming* consumers of the machine's semantic trace events:
each declares the :data:`~repro.evm.trace.EV_BRANCH`-style event kinds it
subscribes to, receives those events incrementally through
:meth:`Oracle.on_event` while a transaction executes, and reports findings
from :meth:`Oracle.end_transaction` once the receipt (success flag,
call-checked marks) is final.  State-effect events an oracle buffered
mid-transaction are rolled back with the subcall that produced them via
:meth:`Oracle.subcall_mark` / :meth:`Oracle.rollback_subcall` — the same
transactional semantics :class:`~repro.evm.trace.ExecutionTrace` applies
to its own event lists.

The historical batch entry point :meth:`Oracle.on_receipt` remains: it
replays a complete receipt trace through the streaming hooks, so tests and
external callers that hold a receipt need no bus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.chain.transactions import TransactionReceipt
from repro.compiler.artifacts import CompiledContract
from repro.evm.trace import events_from_trace


class BugClass(str, Enum):
    """The paper's nine bug classes (Table I abbreviations)."""

    BD = "BD"  # block dependency
    UD = "UD"  # unprotected delegatecall
    EF = "EF"  # ether freezing
    IO = "IO"  # integer over-/under-flow
    RE = "RE"  # reentrancy
    US = "US"  # unprotected selfdestruct
    SE = "SE"  # strict ether equality
    TO = "TO"  # transaction origin use
    UE = "UE"  # unhandled exception

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


ALL_BUG_CLASSES = tuple(BugClass)

#: finding severity levels, most severe first (report ordering)
SEVERITIES = ("high", "medium", "low")


@dataclass(frozen=True)
class Finding:
    """One reported vulnerability.

    Beyond the classification fields, a finding carries triage metadata —
    ``severity`` and ``confidence`` (how often the detection pattern is a
    true positive for its class) — and a **witness**: the serialized
    transaction prefix (:meth:`repro.core.seeds.TxCall.to_dict` records,
    in order) that triggered it, ending with the triggering transaction.
    ``repro replay`` re-executes witnesses to confirm findings
    deterministically.  The witness is excluded from equality/hash: two
    reports of the same defect compare equal regardless of which input
    sequence first exposed it.
    """

    bug_class: BugClass
    contract: str
    pc: int
    line: int
    description: str
    severity: str = "medium"
    confidence: float = 0.5
    #: transaction sequence (TxCall wire dicts) that triggered the finding
    witness: tuple = field(default=(), compare=False)

    @property
    def key(self) -> tuple:
        """Deduplication key: one finding per (class, contract, pc).

        ``contract`` is part of the key so multi-contract campaigns never
        collapse two findings that happen to share a pc.
        """
        return (self.bug_class, self.contract, self.pc)

    def with_witness(self, witness) -> "Finding":
        """A copy carrying ``witness`` (no-op when one is already set)."""
        if self.witness:
            return self
        return Finding(
            bug_class=self.bug_class, contract=self.contract, pc=self.pc,
            line=self.line, description=self.description,
            severity=self.severity, confidence=self.confidence,
            witness=tuple(witness))

    def to_dict(self) -> dict:
        """JSON-serializable form; inverse of :meth:`from_dict`."""
        return {
            "bug_class": self.bug_class.value,
            "contract": self.contract,
            "pc": self.pc,
            "line": self.line,
            "description": self.description,
            "severity": self.severity,
            "confidence": self.confidence,
            "witness": [dict(call) for call in self.witness],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        return cls(
            bug_class=BugClass(data["bug_class"]),
            contract=data["contract"],
            pc=int(data["pc"]),
            line=int(data["line"]),
            description=data["description"],
            severity=data.get("severity", "medium"),
            confidence=float(data.get("confidence", 0.5)),
            witness=tuple(dict(call)
                          for call in data.get("witness", ())),
        )


@dataclass
class OracleContext:
    """Everything oracles may consult about the contract under test."""

    artifact: CompiledContract
    address: int
    deployer: int
    attacker_addresses: frozenset = frozenset()
    #: when a streaming bus drives the campaign, returns the serialized
    #: transaction prefix currently executing — whole-campaign oracles use
    #: it to capture witnesses for findings they only report in finalize
    witness_provider: object = None

    def line_of(self, pc: int) -> int:
        return self.artifact.srcmap.get(pc, 0)

    def current_witness(self) -> tuple:
        """The live transaction prefix, or () outside a bus-driven run."""
        if self.witness_provider is None:
            return ()
        return tuple(self.witness_provider())


class Oracle:
    """Base oracle: subscribe to event kinds, stream, report per transaction.

    Subclasses set :attr:`subscriptions` (an ``EV_*`` bitmask) and override
    the streaming hooks they need:

    * :meth:`begin_transaction` — reset per-transaction buffers;
    * :meth:`on_event` — one subscribed event, in execution order.  CALL
      events arrive when the call *starts*; their mutable fields
      (``success``, ``callee_error``, ``checked``) are final only by
      :meth:`end_transaction`, so buffer the reference and inspect late;
    * :meth:`subcall_mark` / :meth:`rollback_subcall` — transactional
      buffer marks for oracles that buffer *state-effect* events
      (overflow / storage / selfdestruct / ether): when a subcall reverts,
      everything buffered since the mark must be dropped;
    * :meth:`end_transaction` — yield findings for the finished
      transaction (the receipt carries the final success flag);
    * :meth:`finalize` — whole-campaign properties, once at the end.

    :meth:`on_receipt` is the batch adapter over the same hooks.
    """

    bug_class: BugClass
    #: EV_* bitmask of the trace-event kinds this oracle consumes
    subscriptions: int = 0
    #: triage defaults stamped onto this oracle's findings
    severity: str = "medium"
    confidence: float = 0.5
    #: whether the oracle keeps state *across* transactions (anything not
    #: reset by :meth:`begin_transaction`).  The state cache replays
    #: memoized transactions only to replay-sensitive oracles: a
    #: transaction-local oracle fed an already-settled receipt can only
    #: re-emit findings the campaign collector already holds, so the bus
    #: skips it on the fast-forward path.  Set True on any oracle that
    #: accumulates cross-transaction evidence (see the ether-freeze
    #: oracle); forgetting to would silently change campaign results —
    #: the golden-fixture cache-on/off byte-identity guard exists to
    #: catch exactly that.
    replay_sensitive: bool = False

    # -- streaming protocol ---------------------------------------------------

    def begin_transaction(self) -> None:
        pass

    def on_event(self, event, ctx: OracleContext) -> None:
        pass

    def subcall_mark(self):
        return None

    def rollback_subcall(self, mark) -> None:
        pass

    def end_transaction(self, receipt: TransactionReceipt,
                        ctx: OracleContext):
        return ()

    def finalize(self, ctx: OracleContext):
        return ()

    # -- batch adapter ---------------------------------------------------------

    def on_receipt(self, receipt: TransactionReceipt,
                   ctx: OracleContext):
        """Replay a complete receipt trace through the streaming hooks.

        Reverted-subcall state effects were already pruned from the trace,
        so no mark/rollback cycling is needed here.
        """
        self.begin_transaction()
        for event in events_from_trace(receipt.trace, self.subscriptions):
            self.on_event(event, ctx)
        return self.end_transaction(receipt, ctx)

    def finding(self, ctx: OracleContext, pc: int, description: str,
                line: int | None = None) -> Finding:
        """A finding at ``pc`` carrying this oracle's triage defaults."""
        return Finding(
            bug_class=self.bug_class,
            contract=ctx.artifact.name,
            pc=pc,
            line=ctx.line_of(pc) if line is None else line,
            description=description,
            severity=self.severity,
            confidence=self.confidence,
        )

    # -- checkpoint serialization (campaign interrupt/resume) -----------------

    def state_dict(self) -> dict:
        """Whole-campaign state this oracle carries between receipts.

        Stateless oracles (the default) return ``{}``; stateful ones
        (e.g. ether freezing) override both hooks so a resumed campaign
        observes exactly what the uninterrupted one would.  Per-transaction
        buffers are *not* part of this: checkpoints happen at iteration
        boundaries, where every transactional buffer is empty."""
        return {}

    def restore_state(self, data: dict) -> None:
        pass


class BufferedOracle(Oracle):
    """Oracle that accumulates findings per transaction from control-flow
    events (never rolled back): subclasses append to ``self._found`` in
    :meth:`on_event`; the buffer is handed out at transaction end and is
    valid until the next :meth:`begin_transaction` (no per-tx copy)."""

    def __init__(self) -> None:
        self._found: list = []

    def begin_transaction(self) -> None:
        self._found.clear()

    def end_transaction(self, receipt: TransactionReceipt,
                        ctx: OracleContext):
        return self._found


class TransactionalOracle(Oracle):
    """Oracle that buffers *state-effect* events for the contract under
    test per transaction, with mark/rollback honoring subcall reverts:
    subclasses implement :meth:`end_transaction` over ``self._pending``
    (which holds only events that survived every rollback)."""

    def __init__(self) -> None:
        self._pending: list = []

    def begin_transaction(self) -> None:
        self._pending.clear()

    def on_event(self, event, ctx: OracleContext) -> None:
        if event.address == ctx.address:
            self._pending.append(event)

    def subcall_mark(self) -> int:
        return len(self._pending)

    def rollback_subcall(self, mark: int) -> None:
        del self._pending[mark:]


@dataclass
class FindingCollector:
    """Deduplicating sink for findings during a campaign."""

    findings: dict = field(default_factory=dict)

    def add(self, finding: Finding) -> bool:
        """Record ``finding``; True if it was new."""
        if finding.key in self.findings:
            return False
        self.findings[finding.key] = finding
        return True

    def extend(self, findings) -> int:
        count = 0
        add = self.add
        for finding in findings:
            if add(finding):
                count += 1
        return count

    def all(self) -> list:
        return sorted(self.findings.values(),
                      key=lambda f: (f.bug_class.value, f.contract, f.pc))

    def by_class(self) -> dict:
        out: dict = {}
        for finding in self.findings.values():
            out.setdefault(finding.bug_class, []).append(finding)
        return out

    def classes(self) -> set:
        return {f.bug_class for f in self.findings.values()}

    # -- checkpoint serialization ---------------------------------------------

    def state_dict(self) -> dict:
        return {"findings": [f.to_dict() for f in self.findings.values()]}

    def restore_state(self, data: dict) -> None:
        self.findings = {}
        for item in data.get("findings", ()):
            self.add(Finding.from_dict(item))
