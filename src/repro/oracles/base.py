"""Oracle infrastructure: bug classes, findings, and the oracle protocol."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.chain.transactions import TransactionReceipt
from repro.compiler.artifacts import CompiledContract


class BugClass(str, Enum):
    """The paper's nine bug classes (Table I abbreviations)."""

    BD = "BD"  # block dependency
    UD = "UD"  # unprotected delegatecall
    EF = "EF"  # ether freezing
    IO = "IO"  # integer over-/under-flow
    RE = "RE"  # reentrancy
    US = "US"  # unprotected selfdestruct
    SE = "SE"  # strict ether equality
    TO = "TO"  # transaction origin use
    UE = "UE"  # unhandled exception

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


ALL_BUG_CLASSES = tuple(BugClass)


@dataclass(frozen=True)
class Finding:
    """One reported vulnerability."""

    bug_class: BugClass
    contract: str
    pc: int
    line: int
    description: str

    @property
    def key(self) -> tuple:
        """Deduplication key: one finding per (class, pc)."""
        return (self.bug_class, self.pc)

    def to_dict(self) -> dict:
        """JSON-serializable form; inverse of :meth:`from_dict`."""
        return {
            "bug_class": self.bug_class.value,
            "contract": self.contract,
            "pc": self.pc,
            "line": self.line,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        return cls(
            bug_class=BugClass(data["bug_class"]),
            contract=data["contract"],
            pc=int(data["pc"]),
            line=int(data["line"]),
            description=data["description"],
        )


@dataclass
class OracleContext:
    """Everything oracles may consult about the contract under test."""

    artifact: CompiledContract
    address: int
    deployer: int
    attacker_addresses: frozenset = frozenset()

    def line_of(self, pc: int) -> int:
        return self.artifact.srcmap.get(pc, 0)


class Oracle:
    """Base oracle: override ``on_receipt`` and/or ``finalize``.

    ``on_receipt`` is invoked for every executed transaction during a
    campaign; ``finalize`` once at the end (for whole-campaign properties
    such as ether freezing).  Both return iterables of :class:`Finding`.
    """

    bug_class: BugClass

    def on_receipt(self, receipt: TransactionReceipt,
                   ctx: OracleContext):
        return ()

    def finalize(self, ctx: OracleContext):
        return ()

    # -- checkpoint serialization (campaign interrupt/resume) -----------------

    def state_dict(self) -> dict:
        """Whole-campaign state this oracle carries between receipts.

        Stateless oracles (the default) return ``{}``; stateful ones
        (e.g. ether freezing) override both hooks so a resumed campaign
        observes exactly what the uninterrupted one would."""
        return {}

    def restore_state(self, data: dict) -> None:
        pass


@dataclass
class FindingCollector:
    """Deduplicating sink for findings during a campaign."""

    findings: dict = field(default_factory=dict)

    def add(self, finding: Finding) -> bool:
        """Record ``finding``; True if it was new."""
        if finding.key in self.findings:
            return False
        self.findings[finding.key] = finding
        return True

    def extend(self, findings) -> int:
        count = 0
        add = self.add
        for finding in findings:
            if add(finding):
                count += 1
        return count

    def all(self) -> list:
        return sorted(self.findings.values(),
                      key=lambda f: (f.bug_class.value, f.pc))

    def by_class(self) -> dict:
        out: dict = {}
        for finding in self.findings.values():
            out.setdefault(finding.bug_class, []).append(finding)
        return out

    def classes(self) -> set:
        return {f.bug_class for f in self.findings.values()}

    # -- checkpoint serialization ---------------------------------------------

    def state_dict(self) -> dict:
        return {"findings": [f.to_dict() for f in self.findings.values()]}

    def restore_state(self, data: dict) -> None:
        self.findings = {}
        for item in data.get("findings", ()):
            self.add(Finding.from_dict(item))
