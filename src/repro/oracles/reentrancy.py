"""Reentrancy oracle (RE).

§IV-D: the trace contains a CALL forwarding more than the 2300-gas stipend
(a ``call.value`` invocation) with a positive value, and the contract under
test is *re-entered* during that same transaction — the reentrant frame is
observable because the machine flags calls whose target is already on the
active call stack.
"""

from __future__ import annotations

from repro.evm.machine import CALL_STIPEND
from repro.evm.trace import EV_CALL
from repro.oracles.base import BugClass, Oracle, OracleContext


class ReentrancyOracle(Oracle):
    bug_class = BugClass.RE
    subscriptions = EV_CALL
    severity = "high"
    confidence = 0.95

    def __init__(self) -> None:
        #: calls observed this transaction (whole-tx view: the verdict
        #: needs both the reentrant frame and the enabling call.value)
        self._calls: list = []

    def begin_transaction(self) -> None:
        self._calls.clear()

    def on_event(self, event, ctx: OracleContext) -> None:
        self._calls.append(event)

    def end_transaction(self, receipt, ctx: OracleContext):
        if not self._calls:
            return ()
        reentered = any(
            event.reentrant and event.target == ctx.address
            for event in self._calls)
        if not reentered:
            return ()
        return [self.finding(
            ctx, event.pc,
            "call.value with forwarded gas allowed the callee to "
            "re-enter the contract")
            for event in self._calls
            if event.address == ctx.address
            and event.kind == "call"
            and event.value > 0
            and event.gas > CALL_STIPEND]
