"""Reentrancy oracle (RE).

§IV-D: the trace contains a CALL forwarding more than the 2300-gas stipend
(a ``call.value`` invocation) with a positive value, and the contract under
test is *re-entered* during that same transaction — the reentrant frame is
observable because the machine flags calls whose target is already on the
active call stack.
"""

from __future__ import annotations

from repro.evm.machine import CALL_STIPEND
from repro.oracles.base import BugClass, Finding, Oracle, OracleContext


class ReentrancyOracle(Oracle):
    bug_class = BugClass.RE

    def on_receipt(self, receipt, ctx: OracleContext):
        trace = receipt.trace
        reentered = any(
            event.reentrant and event.target == ctx.address
            for event in trace.calls)
        if not reentered:
            return
        for event in trace.calls:
            if (event.address == ctx.address
                    and event.kind == "call"
                    and event.value > 0
                    and event.gas > CALL_STIPEND):
                yield Finding(
                    bug_class=self.bug_class,
                    contract=ctx.artifact.name,
                    pc=event.pc,
                    line=ctx.line_of(event.pc),
                    description="call.value with forwarded gas allowed the "
                                "callee to re-enter the contract",
                )
