"""Integer over-/under-flow oracle (IO).

§IV-D: an ADD/MUL/SUB whose mathematical result was truncated mod 2**256 by
the EVM.  The machine records every truncation as an
:class:`~repro.evm.trace.OverflowEvent`; the oracle reports those that occur
in *successful* transactions (a reverted overflow — the SafeMath guard
pattern — never corrupts persistent state, matching how ConFuzzius and
Smartian count IO bugs).

Overflow events are state effects: the per-transaction buffer is
transactional, so truncations recorded inside a subcall that later reverts
are rolled back and never reported.
"""

from __future__ import annotations

from repro.evm.trace import EV_OVERFLOW
from repro.oracles.base import BugClass, OracleContext, TransactionalOracle


class IntegerOverflowOracle(TransactionalOracle):
    bug_class = BugClass.IO
    subscriptions = EV_OVERFLOW
    severity = "high"
    confidence = 0.8

    def end_transaction(self, receipt, ctx: OracleContext):
        if not self._pending or not receipt.success:
            return ()
        return [self.finding(
            ctx, event.pc,
            f"{event.op_name} truncated: "
            f"{event.lhs} {event.op_name} {event.rhs} "
            f"wrapped to {event.result}") for event in self._pending]
