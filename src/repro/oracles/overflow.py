"""Integer over-/under-flow oracle (IO).

§IV-D: an ADD/MUL/SUB whose mathematical result was truncated mod 2**256 by
the EVM.  The machine records every truncation as an
:class:`~repro.evm.trace.OverflowEvent`; the oracle reports those that occur
in *successful* transactions (a reverted overflow — the SafeMath guard
pattern — never corrupts persistent state, matching how ConFuzzius and
Smartian count IO bugs).
"""

from __future__ import annotations

from repro.oracles.base import BugClass, Finding, Oracle, OracleContext


class IntegerOverflowOracle(Oracle):
    bug_class = BugClass.IO

    def on_receipt(self, receipt, ctx: OracleContext):
        if not receipt.success:
            return
        for event in receipt.trace.overflows:
            if event.address != ctx.address:
                continue
            yield Finding(
                bug_class=self.bug_class,
                contract=ctx.artifact.name,
                pc=event.pc,
                line=ctx.line_of(event.pc),
                description=f"{event.op_name} truncated: "
                            f"{event.lhs} {event.op_name} {event.rhs} "
                            f"wrapped to {event.result}",
            )
