"""Bug oracles for the nine vulnerability classes of the paper (§IV-D).

Each oracle observes transaction receipts (their semantic traces) during a
fuzzing campaign and reports :class:`Finding` records.  The detection logic
follows §IV-D: taint-based checks for block dependency, strict ether
equality, and tx.origin; trace-structure checks for reentrancy, unhandled
exceptions, and unprotected delegatecall/selfdestruct; arithmetic truncation
for integer overflow; and a static+dynamic combination for ether freezing.
"""

from repro.oracles.base import (
    ALL_BUG_CLASSES,
    BugClass,
    Finding,
    FindingCollector,
    Oracle,
    OracleContext,
)
from repro.oracles.block_dep import BlockDependencyOracle
from repro.oracles.bus import OracleBus
from repro.oracles.delegatecall import UnprotectedDelegatecallOracle
from repro.oracles.ether_freeze import EtherFreezeOracle
from repro.oracles.overflow import IntegerOverflowOracle
from repro.oracles.reentrancy import ReentrancyOracle
from repro.oracles.selfdestruct import UnprotectedSelfDestructOracle
from repro.oracles.strict_equality import StrictEqualityOracle
from repro.oracles.tx_origin import TxOriginOracle
from repro.oracles.unhandled_exception import UnhandledExceptionOracle
from repro.oracles.registry import all_oracles, oracle_for

__all__ = [
    "ALL_BUG_CLASSES",
    "BugClass",
    "Finding",
    "FindingCollector",
    "Oracle",
    "OracleBus",
    "OracleContext",
    "BlockDependencyOracle",
    "UnprotectedDelegatecallOracle",
    "EtherFreezeOracle",
    "IntegerOverflowOracle",
    "ReentrancyOracle",
    "UnprotectedSelfDestructOracle",
    "StrictEqualityOracle",
    "TxOriginOracle",
    "UnhandledExceptionOracle",
    "all_oracles",
    "oracle_for",
]
