"""Unprotected selfdestruct oracle (US).

ConFuzzius-style (§IV-D): SELFDESTRUCT executed in a transaction whose
sender is *not* the contract's deployer, or with no caller guard at all —
an arbitrary account can destroy the contract and redirect its balance.

Selfdestruct events are state effects: one recorded inside a subcall that
later reverts did not actually destroy anything, so the per-transaction
buffer is transactional.
"""

from __future__ import annotations

from repro.evm.trace import EV_SELFDESTRUCT
from repro.oracles.base import BugClass, OracleContext, TransactionalOracle


class UnprotectedSelfDestructOracle(TransactionalOracle):
    bug_class = BugClass.US
    subscriptions = EV_SELFDESTRUCT
    severity = "high"
    confidence = 0.95

    def end_transaction(self, receipt, ctx: OracleContext):
        if not self._pending or not receipt.success:
            return ()
        return [self.finding(
            ctx, event.pc,
            f"selfdestruct executed by non-owner {event.caller:#x}")
            for event in self._pending
            if event.caller != ctx.deployer
            or not event.guarded_by_caller_check]
