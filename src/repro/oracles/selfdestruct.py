"""Unprotected selfdestruct oracle (US).

ConFuzzius-style (§IV-D): SELFDESTRUCT executed in a transaction whose
sender is *not* the contract's deployer, or with no caller guard at all —
an arbitrary account can destroy the contract and redirect its balance.
"""

from __future__ import annotations

from repro.oracles.base import BugClass, Finding, Oracle, OracleContext


class UnprotectedSelfDestructOracle(Oracle):
    bug_class = BugClass.US

    def on_receipt(self, receipt, ctx: OracleContext):
        if not receipt.success:
            return
        for event in receipt.trace.selfdestructs:
            if event.address != ctx.address:
                continue
            unprotected = (event.caller != ctx.deployer
                           or not event.guarded_by_caller_check)
            if unprotected:
                yield Finding(
                    bug_class=self.bug_class,
                    contract=ctx.artifact.name,
                    pc=event.pc,
                    line=ctx.line_of(event.pc),
                    description=f"selfdestruct executed by non-owner "
                                f"{event.caller:#x}",
                )
