"""Oracle registry: fresh oracle instances per campaign."""

from __future__ import annotations

from repro.oracles.base import BugClass, Oracle
from repro.oracles.block_dep import BlockDependencyOracle
from repro.oracles.delegatecall import UnprotectedDelegatecallOracle
from repro.oracles.ether_freeze import EtherFreezeOracle
from repro.oracles.overflow import IntegerOverflowOracle
from repro.oracles.reentrancy import ReentrancyOracle
from repro.oracles.selfdestruct import UnprotectedSelfDestructOracle
from repro.oracles.strict_equality import StrictEqualityOracle
from repro.oracles.tx_origin import TxOriginOracle
from repro.oracles.unhandled_exception import UnhandledExceptionOracle

_ORACLE_TYPES = {
    BugClass.BD: BlockDependencyOracle,
    BugClass.UD: UnprotectedDelegatecallOracle,
    BugClass.EF: EtherFreezeOracle,
    BugClass.IO: IntegerOverflowOracle,
    BugClass.RE: ReentrancyOracle,
    BugClass.US: UnprotectedSelfDestructOracle,
    BugClass.SE: StrictEqualityOracle,
    BugClass.TO: TxOriginOracle,
    BugClass.UE: UnhandledExceptionOracle,
}


def all_oracles(supported=None) -> list:
    """Fresh instances of every oracle (optionally restricted to a subset of
    :class:`BugClass` — used to model tools that support fewer classes, and
    by ``--oracles`` to focus a campaign).  Instances always come out in
    registry order, whatever container ``supported`` is, so event dispatch
    and finding settlement are deterministic."""
    if supported is None:
        return [factory() for factory in _ORACLE_TYPES.values()]
    wanted = {BugClass(bc) for bc in supported}
    return [factory() for bc, factory in _ORACLE_TYPES.items()
            if bc in wanted]


def oracle_for(bug_class: BugClass) -> Oracle:
    """A fresh oracle instance for one bug class."""
    return _ORACLE_TYPES[bug_class]()
