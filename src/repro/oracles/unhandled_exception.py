"""Unhandled exception oracle (UE).

§IV-D: an external call failed (the callee reverted, ran out of gas, or hit
INVALID) and the caller never routed the success flag into a conditional
jump — the classic unchecked ``send``.  The machine taints every call's
success flag and marks the call *checked* when that taint reaches a JUMPI,
so the oracle only needs to look for failed-and-unchecked calls.

Call events arrive when the call starts; ``success`` and ``checked``
settle later in the transaction, so the oracle buffers the event
references and inspects them once the receipt is final.
"""

from __future__ import annotations

from repro.evm.trace import EV_CALL
from repro.oracles.base import BugClass, Oracle, OracleContext


class UnhandledExceptionOracle(Oracle):
    bug_class = BugClass.UE
    subscriptions = EV_CALL
    severity = "medium"
    confidence = 0.9

    def __init__(self) -> None:
        self._calls: list = []

    def begin_transaction(self) -> None:
        self._calls.clear()

    def on_event(self, event, ctx: OracleContext) -> None:
        if event.address == ctx.address and event.kind == "call":
            self._calls.append(event)

    def end_transaction(self, receipt, ctx: OracleContext):
        if not self._calls:
            return ()
        return [self.finding(
            ctx, event.pc,
            f"external call failed "
            f"({event.callee_error or 'reverted'}) and "
            "its return value was never checked")
            for event in self._calls
            if not event.success and not event.checked]
