"""Unhandled exception oracle (UE).

§IV-D: an external call failed (the callee reverted, ran out of gas, or hit
INVALID) and the caller never routed the success flag into a conditional
jump — the classic unchecked ``send``.  The machine taints every call's
success flag and marks the call *checked* when that taint reaches a JUMPI,
so the oracle only needs to look for failed-and-unchecked calls.
"""

from __future__ import annotations

from repro.oracles.base import BugClass, Finding, Oracle, OracleContext


class UnhandledExceptionOracle(Oracle):
    bug_class = BugClass.UE

    def on_receipt(self, receipt, ctx: OracleContext):
        for event in receipt.trace.calls:
            if event.address != ctx.address or event.kind != "call":
                continue
            if not event.success and not event.checked:
                yield Finding(
                    bug_class=self.bug_class,
                    contract=ctx.artifact.name,
                    pc=event.pc,
                    line=ctx.line_of(event.pc),
                    description=f"external call failed "
                                f"({event.callee_error or 'reverted'}) and "
                                "its return value was never checked",
                )
