"""Ether freezing oracle (EF).

ContractFuzzer-style (§IV-D "we implement the same bug oracles as ...
ContractFuzzer (e.g., EF)"): the contract *received* ether during the
campaign, yet its runtime bytecode contains no instruction that can ever
send ether out (CALL, DELEGATECALL, SELFDESTRUCT) — funds are frozen.

This is a whole-campaign property, so the check runs in ``finalize``.
"""

from __future__ import annotations

from repro.analysis.disassembler import disassemble
from repro.evm.opcodes import Op
from repro.oracles.base import BugClass, Finding, Oracle, OracleContext

_SEND_OPS = frozenset({Op.CALL, Op.DELEGATECALL, Op.SELFDESTRUCT})


class EtherFreezeOracle(Oracle):
    bug_class = BugClass.EF

    def __init__(self) -> None:
        self._received = False

    def on_receipt(self, receipt, ctx: OracleContext):
        if not receipt.success:
            return ()
        if receipt.trace.ether_received.get(ctx.address, 0) > 0:
            self._received = True
        return ()

    def state_dict(self) -> dict:
        return {"received": self._received}

    def restore_state(self, data: dict) -> None:
        self._received = bool(data.get("received", False))

    def finalize(self, ctx: OracleContext):
        if not self._received:
            return
        opcodes_present = {ins.opcode
                           for ins in disassemble(ctx.artifact.runtime_code)}
        if opcodes_present & _SEND_OPS:
            return
        yield Finding(
            bug_class=self.bug_class,
            contract=ctx.artifact.name,
            pc=0,
            line=ctx.artifact.contract_ast.line,
            description="contract accepts ether but has no instruction that "
                        "can send it out (funds frozen)",
        )
