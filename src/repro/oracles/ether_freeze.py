"""Ether freezing oracle (EF).

ContractFuzzer-style (§IV-D "we implement the same bug oracles as ...
ContractFuzzer (e.g., EF)"): the contract *received* ether during the
campaign, yet its runtime bytecode contains no instruction that can ever
send ether out (CALL, DELEGATECALL, SELFDESTRUCT) — funds are frozen.

This is a whole-campaign property, so the check runs in ``finalize``.
Ether events are state effects: value received by a subcall that later
reverts is rolled back out of the per-transaction tally.  The first
successful transaction that actually delivered ether is captured as the
finding's witness (and serialized into campaign checkpoints, so a resumed
campaign replays the same witness).
"""

from __future__ import annotations

from repro.analysis.disassembler import disassemble
from repro.evm.opcodes import Op
from repro.evm.trace import EV_ETHER
from repro.oracles.base import BugClass, Oracle, OracleContext

_SEND_OPS = frozenset({Op.CALL, Op.DELEGATECALL, Op.SELFDESTRUCT})


class EtherFreezeOracle(Oracle):
    bug_class = BugClass.EF
    subscriptions = EV_ETHER
    severity = "medium"
    confidence = 0.8
    #: tracks whether the contract *ever* received ether (and the prefix
    #: that first delivered it) — cross-transaction state, so memoized
    #: transactions must still be replayed through this oracle
    replay_sensitive = True

    def __init__(self) -> None:
        self._received = False
        #: transaction prefix that first delivered ether (finding witness)
        self._witness: tuple = ()
        #: ether credited to the contract under test this transaction
        self._tx_received = 0

    def begin_transaction(self) -> None:
        self._tx_received = 0

    def on_event(self, event, ctx: OracleContext) -> None:
        if event.address == ctx.address:
            self._tx_received += event.amount

    def subcall_mark(self) -> int:
        return self._tx_received

    def rollback_subcall(self, mark: int) -> None:
        self._tx_received = mark

    def end_transaction(self, receipt, ctx: OracleContext):
        if receipt.success and self._tx_received > 0 \
                and not self._received:
            self._received = True
            self._witness = ctx.current_witness()
        return ()

    def state_dict(self) -> dict:
        if not self._received:
            return {}
        return {"received": True, "witness": list(self._witness)}

    def restore_state(self, data: dict) -> None:
        self._received = bool(data.get("received", False))
        self._witness = tuple(data.get("witness", ()))

    def finalize(self, ctx: OracleContext):
        if not self._received:
            return
        opcodes_present = {ins.opcode
                           for ins in disassemble(ctx.artifact.runtime_code)}
        if opcodes_present & _SEND_OPS:
            return
        yield self.finding(
            ctx, 0,
            "contract accepts ether but has no instruction that "
            "can send it out (funds frozen)",
            line=ctx.artifact.contract_ast.line,
        ).with_witness(self._witness)
