"""Transaction-origin oracle (TO).

Smartian-style (§IV-D): ``tx.origin`` feeds a comparison or a conditional
jump — the phishing-prone authentication pattern (origin survives through
intermediate contracts, unlike msg.sender).
"""

from __future__ import annotations

from repro.evm.trace import EV_COMPARE, Taint
from repro.oracles.base import BugClass, BufferedOracle, OracleContext


class TxOriginOracle(BufferedOracle):
    bug_class = BugClass.TO
    subscriptions = EV_COMPARE
    severity = "medium"
    confidence = 0.85

    def on_event(self, event, ctx: OracleContext) -> None:
        if event.address != ctx.address:
            return
        if Taint.ORIGIN in event.taints:
            self._found.append(self.finding(
                ctx, event.pc, "tx.origin used for authentication"))
