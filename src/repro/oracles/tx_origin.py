"""Transaction-origin oracle (TO).

Smartian-style (§IV-D): ``tx.origin`` feeds a comparison or a conditional
jump — the phishing-prone authentication pattern (origin survives through
intermediate contracts, unlike msg.sender).
"""

from __future__ import annotations

from repro.evm.trace import Taint
from repro.oracles.base import BugClass, Finding, Oracle, OracleContext


class TxOriginOracle(Oracle):
    bug_class = BugClass.TO

    def on_receipt(self, receipt, ctx: OracleContext):
        for event in receipt.trace.compares:
            if event.address != ctx.address:
                continue
            if Taint.ORIGIN in event.taints:
                yield Finding(
                    bug_class=self.bug_class,
                    contract=ctx.artifact.name,
                    pc=event.pc,
                    line=ctx.line_of(event.pc),
                    description="tx.origin used for authentication",
                )
