"""The streaming oracle bus: subscription-filtered event dispatch.

One :class:`OracleBus` serves one campaign.  It computes the union
subscription mask of its oracles (the machine materializes *only* those
event kinds), fans each recorded event out to the oracles subscribed to
its kind while the transaction is still executing, and settles findings at
transaction end — attaching a **witness** (the transaction prefix that
triggered the finding) to every new finding before it reaches the
collector.

Subcall-revert rollback is forwarded to the oracles' transactional
buffers: when the machine rolls a reverted frame's state-effect events out
of the trace, the bus rolls the same events out of every subscribed
oracle, so streaming and per-receipt batch scanning are observationally
identical.
"""

from __future__ import annotations

from repro.evm.trace import (
    EV_BRANCH,
    EV_BLOCK,
    EV_CALL,
    EV_COMPARE,
    EV_ETHER,
    EV_OVERFLOW,
    EV_SELFDESTRUCT,
    EV_STATE_EFFECTS,
    EV_STORAGE,
    EtherEvent,
)
from repro.oracles.base import FindingCollector, OracleContext


class OracleBus:
    """Dispatches trace events to subscribed oracles during execution.

    Parameters
    ----------
    oracles:
        The campaign's oracle instances, in registry order (dispatch and
        settlement preserve this order, so finding deduplication behaves
        exactly like the historical per-receipt oracle loop).
    ctx:
        The :class:`~repro.oracles.base.OracleContext` passed to every
        hook.
    collector:
        Optional :class:`~repro.oracles.base.FindingCollector`; used to
        decide which findings are *new* (only those pay for witness
        serialization).
    dead_classes:
        Bug-class codes the vulnerability surface *proved* impossible for
        the contract under test (whole-code opcode absence — see
        :mod:`repro.analysis.surface`).  Their oracles are dropped from
        every dispatch table and from the subscription mask, so the event
        kinds only they consume are never materialized.  ``self.oracles``
        keeps the full registry-ordered list (checkpoints key oracle state
        by bug class, so capture/restore is pruning-agnostic); only the
        live subset participates in dispatch and settlement.
    """

    def __init__(self, oracles, ctx: OracleContext,
                 collector: FindingCollector | None = None,
                 dead_classes: frozenset = frozenset()) -> None:
        self.oracles = list(oracles)
        self.ctx = ctx
        ctx.witness_provider = self.current_witness
        self.collector = collector
        #: oracles whose bug class survived surface pruning, registry order
        self.live_oracles = [
            o for o in self.oracles
            if o.bug_class.value not in dead_classes]
        #: bug classes of the oracles pruned away, registry order
        self.pruned = tuple(o.bug_class for o in self.oracles
                            if o.bug_class.value in dead_classes)
        #: union of the live oracles' subscriptions — the machine's mask
        self.mask = 0
        for oracle in self.live_oracles:
            self.mask |= oracle.subscriptions
        #: per-kind tuples of *bound* ``on_event`` methods (binding once
        #: per campaign keeps the per-event dispatch to a plain call)
        self._subs = {
            kind: tuple(o.on_event for o in self.live_oracles
                        if o.subscriptions & kind)
            for kind in (EV_BRANCH, EV_COMPARE, EV_CALL, EV_OVERFLOW,
                         EV_STORAGE, EV_SELFDESTRUCT, EV_BLOCK, EV_ETHER)
        }
        #: the per-kind tables in machine attribute order — built once per
        #: campaign, unpacked by every per-transaction Machine
        self.dispatch_tables = tuple(
            self._subs[kind]
            for kind in (EV_BRANCH, EV_COMPARE, EV_CALL, EV_OVERFLOW,
                         EV_STORAGE, EV_SELFDESTRUCT, EV_BLOCK, EV_ETHER))
        #: oracles holding transactional (state-effect) buffers
        self._transactional = tuple(
            o for o in self.live_oracles
            if o.subscriptions & EV_STATE_EFFECTS)
        #: bound per-transaction hooks (one method lookup per campaign,
        #: not one per transaction)
        self._begin_hooks = tuple(o.begin_transaction
                                  for o in self.live_oracles)
        self._end_hooks = tuple(o.end_transaction for o in self.live_oracles)
        #: the state-cache fast-forward path only replays memoized
        #: transactions through oracles that keep cross-transaction state
        #: (``replay_sensitive``) — a transaction-local oracle fed an
        #: already-settled receipt could only re-emit duplicates the
        #: campaign collector drops anyway
        replay_oracles = tuple(o for o in self.live_oracles
                               if o.replay_sensitive)
        self._replay_subs = {
            kind: tuple(o.on_event for o in replay_oracles
                        if o.subscriptions & kind)
            for kind in (EV_BRANCH, EV_COMPARE, EV_CALL, EV_OVERFLOW,
                         EV_STORAGE, EV_SELFDESTRUCT, EV_BLOCK, EV_ETHER)
        }
        self._replay_begin = tuple(o.begin_transaction
                                   for o in replay_oracles)
        self._replay_end = tuple(o.end_transaction for o in replay_oracles)
        #: the sequence currently executing and the index of the live tx
        self._calls: list = []
        self._tx_index = 0

    # -- sequence / witness bookkeeping ----------------------------------------

    def begin_sequence(self, calls, start_at: int = 0) -> None:
        """Announce the transaction sequence about to execute.

        ``calls`` are the seed's :class:`~repro.core.seeds.TxCall`
        records.  A memoized state-cache prefix does *not* move
        ``start_at``: every skipped transaction is re-dispatched through
        :meth:`replay_transaction`, which advances the sequence position
        just like a live one — oracles stay in lockstep and witnesses
        keep their full prefixes.
        """
        self._calls = list(calls)
        self._tx_index = start_at

    def current_witness(self) -> tuple:
        """Serialized prefix of the running sequence up to the live tx."""
        return tuple(call.to_dict()
                     for call in self._calls[:self._tx_index + 1])

    # -- transaction lifecycle -------------------------------------------------

    def begin_transaction(self) -> None:
        for hook in self._begin_hooks:
            hook()

    def subcall_mark(self) -> tuple:
        return tuple(oracle.subcall_mark()
                     for oracle in self._transactional)

    def rollback_subcall(self, marks: tuple) -> None:
        for oracle, mark in zip(self._transactional, marks):
            oracle.rollback_subcall(mark)

    def end_transaction(self, receipt) -> list:
        """Settle the finished transaction: collect findings, attach
        witnesses to new ones, and advance the sequence position."""
        findings = []
        witness = None
        ctx = self.ctx
        for hook in self._end_hooks:
            for finding in hook(receipt, ctx):
                if self._is_new(finding):
                    if witness is None:
                        witness = self.current_witness()
                    finding = finding.with_witness(witness)
                findings.append(finding)
        self._tx_index += 1
        return findings

    def replay_transaction(self, receipt) -> list:
        """Fast-forward a memoized transaction from its recorded trace.

        The state-cache hit path: the transaction's machine never runs,
        so the bus feeds the receipt's recorded events to the
        **replay-sensitive** oracles — the ones whose cross-transaction
        state must observe every transaction, skipped or not.  One pass
        over the trace, kind-major in the canonical
        :func:`~repro.evm.trace.events_from_trace` order, so each oracle
        sees exactly the stream the batch adapter
        (:meth:`~repro.oracles.base.Oracle.on_receipt`) would feed it,
        which the parity tests pin as observationally identical to live
        streaming.  Transaction-local oracles are not consulted at all: a
        prefix is memoized only after executing (and settling) live at
        least twice, so anything they would emit from this receipt is
        already in the campaign collector.  Reverted-subcall state
        effects were pruned from the trace when it was recorded, so no
        mark/rollback cycling is needed.  Settlement mirrors
        :meth:`end_transaction` (witness attachment, sequence advance)
        over the replayed oracles, keeping campaign results
        byte-identical to a cache-off run.
        """
        for hook in self._replay_begin:
            hook()
        ctx = self.ctx
        trace = receipt.trace
        subs = self._replay_subs
        for kind, events in (
                (EV_BRANCH, trace.branches),
                (EV_COMPARE, trace.compares),
                (EV_CALL, trace.calls),
                (EV_OVERFLOW, trace.overflows),
                (EV_STORAGE, trace.storage_ops),
                (EV_SELFDESTRUCT, trace.selfdestructs),
                (EV_BLOCK, trace.block_reads)):
            handlers = subs[kind]
            if handlers and events:
                for event in events:
                    for on_event in handlers:
                        on_event(event, ctx)
        handlers = subs[EV_ETHER]
        if handlers and trace.ether_received:
            for address, amount in trace.ether_received.items():
                event = EtherEvent(pc=0, address=address, depth=0,
                                   amount=amount)
                for on_event in handlers:
                    on_event(event, ctx)
        findings = []
        witness = None
        for hook in self._replay_end:
            for finding in hook(receipt, ctx):
                if self._is_new(finding):
                    if witness is None:
                        witness = self.current_witness()
                    finding = finding.with_witness(witness)
                findings.append(finding)
        self._tx_index += 1
        return findings

    def finalize(self) -> list:
        """End-of-campaign findings (whole-campaign oracles attach their
        own witnesses — see the ether-freeze oracle).  Pruned oracles are
        skipped: their liveness proof means finalize could only ever
        return empty anyway."""
        findings = []
        for oracle in self.live_oracles:
            findings.extend(oracle.finalize(self.ctx))
        return findings

    def _is_new(self, finding) -> bool:
        return (self.collector is None
                or finding.key not in self.collector.findings)
