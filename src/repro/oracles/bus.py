"""The streaming oracle bus: subscription-filtered event dispatch.

One :class:`OracleBus` serves one campaign.  It computes the union
subscription mask of its oracles (the machine materializes *only* those
event kinds), fans each recorded event out to the oracles subscribed to
its kind while the transaction is still executing, and settles findings at
transaction end — attaching a **witness** (the transaction prefix that
triggered the finding) to every new finding before it reaches the
collector.

Subcall-revert rollback is forwarded to the oracles' transactional
buffers: when the machine rolls a reverted frame's state-effect events out
of the trace, the bus rolls the same events out of every subscribed
oracle, so streaming and per-receipt batch scanning are observationally
identical.
"""

from __future__ import annotations

from repro.evm.trace import (
    EV_BRANCH,
    EV_BLOCK,
    EV_CALL,
    EV_COMPARE,
    EV_ETHER,
    EV_OVERFLOW,
    EV_SELFDESTRUCT,
    EV_STATE_EFFECTS,
    EV_STORAGE,
)
from repro.oracles.base import FindingCollector, OracleContext


class OracleBus:
    """Dispatches trace events to subscribed oracles during execution.

    Parameters
    ----------
    oracles:
        The campaign's oracle instances, in registry order (dispatch and
        settlement preserve this order, so finding deduplication behaves
        exactly like the historical per-receipt oracle loop).
    ctx:
        The :class:`~repro.oracles.base.OracleContext` passed to every
        hook.
    collector:
        Optional :class:`~repro.oracles.base.FindingCollector`; used to
        decide which findings are *new* (only those pay for witness
        serialization).
    """

    def __init__(self, oracles, ctx: OracleContext,
                 collector: FindingCollector | None = None) -> None:
        self.oracles = list(oracles)
        self.ctx = ctx
        ctx.witness_provider = self.current_witness
        self.collector = collector
        #: union of the oracles' subscriptions — the machine's event mask
        self.mask = 0
        for oracle in self.oracles:
            self.mask |= oracle.subscriptions
        #: per-kind tuples of *bound* ``on_event`` methods (binding once
        #: per campaign keeps the per-event dispatch to a plain call)
        self._subs = {
            kind: tuple(o.on_event for o in self.oracles
                        if o.subscriptions & kind)
            for kind in (EV_BRANCH, EV_COMPARE, EV_CALL, EV_OVERFLOW,
                         EV_STORAGE, EV_SELFDESTRUCT, EV_BLOCK, EV_ETHER)
        }
        #: the per-kind tables in machine attribute order — built once per
        #: campaign, unpacked by every per-transaction Machine
        self.dispatch_tables = tuple(
            self._subs[kind]
            for kind in (EV_BRANCH, EV_COMPARE, EV_CALL, EV_OVERFLOW,
                         EV_STORAGE, EV_SELFDESTRUCT, EV_BLOCK, EV_ETHER))
        #: oracles holding transactional (state-effect) buffers
        self._transactional = tuple(
            o for o in self.oracles if o.subscriptions & EV_STATE_EFFECTS)
        #: bound per-transaction hooks (one method lookup per campaign,
        #: not one per transaction)
        self._begin_hooks = tuple(o.begin_transaction for o in self.oracles)
        self._end_hooks = tuple(o.end_transaction for o in self.oracles)
        #: the sequence currently executing and the index of the live tx
        self._calls: list = []
        self._tx_index = 0

    # -- sequence / witness bookkeeping ----------------------------------------

    def begin_sequence(self, calls, start_at: int = 0) -> None:
        """Announce the transaction sequence about to execute.

        ``calls`` are the seed's :class:`~repro.core.seeds.TxCall` records;
        ``start_at`` is the first index that will actually run (earlier
        transactions were replayed from a memoized state-cache prefix but
        still belong in any witness).
        """
        self._calls = list(calls)
        self._tx_index = start_at

    def current_witness(self) -> tuple:
        """Serialized prefix of the running sequence up to the live tx."""
        return tuple(call.to_dict()
                     for call in self._calls[:self._tx_index + 1])

    # -- transaction lifecycle -------------------------------------------------

    def begin_transaction(self) -> None:
        for hook in self._begin_hooks:
            hook()

    def subcall_mark(self) -> tuple:
        return tuple(oracle.subcall_mark()
                     for oracle in self._transactional)

    def rollback_subcall(self, marks: tuple) -> None:
        for oracle, mark in zip(self._transactional, marks):
            oracle.rollback_subcall(mark)

    def end_transaction(self, receipt) -> list:
        """Settle the finished transaction: collect findings, attach
        witnesses to new ones, and advance the sequence position."""
        findings = []
        witness = None
        ctx = self.ctx
        for hook in self._end_hooks:
            for finding in hook(receipt, ctx):
                if self._is_new(finding):
                    if witness is None:
                        witness = self.current_witness()
                    finding = finding.with_witness(witness)
                findings.append(finding)
        self._tx_index += 1
        return findings

    def finalize(self) -> list:
        """End-of-campaign findings (whole-campaign oracles attach their
        own witnesses — see the ether-freeze oracle)."""
        findings = []
        for oracle in self.oracles:
            findings.extend(oracle.finalize(self.ctx))
        return findings

    def _is_new(self, finding) -> bool:
        return (self.collector is None
                or finding.key not in self.collector.findings)
