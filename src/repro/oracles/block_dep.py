"""Block dependency oracle (BD).

§IV-D: the trace contains a block-state instruction (TIMESTAMP, NUMBER, ...)
whose value *contaminates* a CALL, a JUMPI, or a comparison.  Taint tags do
the contamination tracking; this oracle just inspects tainted events.
"""

from __future__ import annotations

from repro.evm.trace import EV_BRANCH, EV_CALL, BranchEvent, Taint
from repro.oracles.base import BugClass, BufferedOracle, OracleContext


class BlockDependencyOracle(BufferedOracle):
    bug_class = BugClass.BD
    # NB: not subscribed to EV_BLOCK — block-state taint can arrive through
    # storage written by an *earlier* transaction, so the block-read events
    # themselves carry no signal; only tainted branches/calls do.
    subscriptions = EV_BRANCH | EV_CALL
    severity = "low"
    confidence = 0.7

    def on_event(self, event, ctx: OracleContext) -> None:
        if event.address != ctx.address:
            return
        if isinstance(event, BranchEvent):
            if Taint.BLOCK in event.taints:
                self._found.append(self.finding(
                    ctx, event.pc,
                    "block state (timestamp/number) influences a "
                    "conditional jump"))
        elif Taint.BLOCK in event.value_taints or \
                Taint.BLOCK in event.target_taints:
            self._found.append(self.finding(
                ctx, event.pc,
                "block state flows into the value/target of an "
                "external call"))
