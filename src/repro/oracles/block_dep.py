"""Block dependency oracle (BD).

§IV-D: the trace contains a block-state instruction (TIMESTAMP, NUMBER, ...)
whose value *contaminates* a CALL, a JUMPI, or a comparison.  Taint tags do
the contamination tracking; this oracle just inspects tainted events.
"""

from __future__ import annotations

from repro.evm.trace import Taint
from repro.oracles.base import BugClass, Finding, Oracle, OracleContext


class BlockDependencyOracle(Oracle):
    bug_class = BugClass.BD

    def on_receipt(self, receipt, ctx: OracleContext):
        # NB: no short-circuit on trace.block_reads — block-state taint can
        # arrive through storage written by an *earlier* transaction.
        trace = receipt.trace
        for event in trace.branches:
            if event.address != ctx.address:
                continue
            if Taint.BLOCK in event.taints:
                yield Finding(
                    bug_class=self.bug_class,
                    contract=ctx.artifact.name,
                    pc=event.pc,
                    line=ctx.line_of(event.pc),
                    description="block state (timestamp/number) influences a "
                                "conditional jump",
                )
        for event in trace.calls:
            if event.address != ctx.address:
                continue
            if Taint.BLOCK in event.value_taints or \
                    Taint.BLOCK in event.target_taints:
                yield Finding(
                    bug_class=self.bug_class,
                    contract=ctx.artifact.name,
                    pc=event.pc,
                    line=ctx.line_of(event.pc),
                    description="block state flows into the value/target of "
                                "an external call",
                )
