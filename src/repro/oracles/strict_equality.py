"""Strict ether equality oracle (SE).

§IV-D: a BALANCE read feeds an equality comparison that guards control flow.
Because an attacker can always skew a contract's balance by self-destructing
ether into it, ``==`` on balances is a denial-of-service bug.
"""

from __future__ import annotations

from repro.evm.trace import EV_COMPARE, Taint
from repro.oracles.base import BugClass, BufferedOracle, OracleContext


class StrictEqualityOracle(BufferedOracle):
    bug_class = BugClass.SE
    subscriptions = EV_COMPARE
    severity = "low"
    confidence = 0.8

    def on_event(self, event, ctx: OracleContext) -> None:
        if event.address != ctx.address:
            return
        if event.op_name == "EQ" and Taint.BALANCE in event.taints:
            self._found.append(self.finding(
                ctx, event.pc,
                "contract balance used in a strict equality comparison"))
