"""Strict ether equality oracle (SE).

§IV-D: a BALANCE read feeds an equality comparison that guards control flow.
Because an attacker can always skew a contract's balance by self-destructing
ether into it, ``==`` on balances is a denial-of-service bug.
"""

from __future__ import annotations

from repro.evm.trace import Taint
from repro.oracles.base import BugClass, Finding, Oracle, OracleContext


class StrictEqualityOracle(Oracle):
    bug_class = BugClass.SE

    def on_receipt(self, receipt, ctx: OracleContext):
        for event in receipt.trace.compares:
            if event.address != ctx.address:
                continue
            if event.op_name == "EQ" and Taint.BALANCE in event.taints:
                yield Finding(
                    bug_class=self.bug_class,
                    contract=ctx.artifact.name,
                    pc=event.pc,
                    line=ctx.line_of(event.pc),
                    description="contract balance used in a strict equality "
                                "comparison",
                )
