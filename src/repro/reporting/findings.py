"""Cross-run findings aggregation for ``repro report``.

Input is the result store's findings projection — flat rows as returned
by :meth:`StoreBackend.query_findings
<repro.orchestrator.store.base.StoreBackend.query_findings>`, one per
(job, finding).  The same defect found by several trials/presets shares a
``fingerprint`` (the stable hash of the finding's dedup key: bug class,
contract, pc), so aggregation happens on fingerprints: "how many distinct
defects", not "how many reports of them".
"""

from __future__ import annotations

from repro.oracles.base import SEVERITIES
from repro.reporting.tables import format_table

__all__ = ["FindingsReport", "aggregate_findings", "format_findings_report"]


class FindingsReport:
    """Aggregated view over a set of findings-projection rows."""

    def __init__(self, rows) -> None:
        self.rows = list(rows)
        #: fingerprint → the rows reporting that one defect
        self.defects: dict = {}
        for row in self.rows:
            self.defects.setdefault(row["fingerprint"], []).append(row)

    # -- rollups --------------------------------------------------------------

    def by_class(self) -> dict:
        """bug class → (distinct defects, total reports)."""
        return self._rollup("bug_class")

    def by_severity(self) -> dict:
        """severity → (distinct defects, total reports), most severe
        first (unknown severities sort after the known ladder)."""
        rollup = self._rollup("severity")
        order = {sev: i for i, sev in enumerate(SEVERITIES)}
        return {sev: rollup[sev]
                for sev in sorted(rollup,
                                  key=lambda s: (order.get(s, len(order)),
                                                 s))}

    def by_contract(self) -> dict:
        """contract → (distinct defects, total reports)."""
        return self._rollup("contract")

    def _rollup(self, field: str) -> dict:
        out: dict = {}
        for fingerprint, rows in sorted(self.defects.items()):
            key = rows[0][field]
            defects, reports = out.get(key, (0, 0))
            out[key] = (defects + 1, reports + len(rows))
        return dict(sorted(out.items()))

    def defect_rows(self) -> list:
        """One representative row per distinct defect, with a ``reports``
        count and the set of presets that found it, severity-major order."""
        order = {sev: i for i, sev in enumerate(SEVERITIES)}
        out = []
        for fingerprint, rows in sorted(self.defects.items()):
            first = min(rows, key=lambda r: (r["job_id"],))
            out.append({
                **{k: first[k] for k in ("bug_class", "contract", "pc",
                                         "line", "severity", "confidence",
                                         "description", "fingerprint")},
                "reports": len(rows),
                "presets": sorted({r["preset"] for r in rows}),
            })
        out.sort(key=lambda r: (order.get(r["severity"], len(order)),
                                r["contract"], r["bug_class"], r["pc"]))
        return out

    def to_dict(self) -> dict:
        """JSON-serializable report (``repro report --json``)."""
        return {
            "defects": len(self.defects),
            "reports": len(self.rows),
            "by_class": {k: {"defects": d, "reports": r}
                         for k, (d, r) in self.by_class().items()},
            "by_severity": {k: {"defects": d, "reports": r}
                            for k, (d, r) in self.by_severity().items()},
            "by_contract": {k: {"defects": d, "reports": r}
                            for k, (d, r) in self.by_contract().items()},
            "findings": self.defect_rows(),
        }


def aggregate_findings(rows) -> FindingsReport:
    """Aggregate findings-projection rows into a :class:`FindingsReport`."""
    return FindingsReport(rows)


def format_findings_report(report: FindingsReport) -> str:
    """The plain-text rendering of ``repro report``."""
    if not report.rows:
        return "no findings recorded"
    sections = [format_table(
        ("severity", "defects", "reports"),
        [(sev, defects, reports)
         for sev, (defects, reports) in report.by_severity().items()],
        title=(f"Findings: {len(report.defects)} distinct defect(s), "
               f"{len(report.rows)} report(s)"))]
    sections.append(format_table(
        ("bug class", "defects", "reports"),
        [(cls, defects, reports)
         for cls, (defects, reports) in report.by_class().items()],
        title="By bug class"))
    sections.append(format_table(
        ("contract", "defects", "reports"),
        [(contract, defects, reports)
         for contract, (defects, reports) in report.by_contract().items()],
        title="By contract"))
    sections.append(format_table(
        ("severity", "class", "contract", "pc", "line", "reports",
         "presets", "fingerprint"),
        [(row["severity"], row["bug_class"], row["contract"], row["pc"],
          row["line"], row["reports"], ",".join(row["presets"]),
          row["fingerprint"])
         for row in report.defect_rows()],
        title="Distinct defects"))
    return "\n\n".join(sections)
