"""Plain-text table rendering for the benchmark harness output."""

from __future__ import annotations


def format_table(headers, rows, title: str = "") -> str:
    """Render a fixed-width table.

    ``rows`` is a list of sequences; every cell is str()-ed.  Column widths
    adapt to content.
    """
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(str(h)) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells) -> str:
        return " | ".join(str(c).ljust(widths[i])
                          for i, c in enumerate(cells))

    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
        out.append("=" * len(sep))
    out.append(line(headers))
    out.append(sep)
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def format_percentage_bars(entries, width: int = 40, title: str = "") -> str:
    """ASCII bar chart for (label, fraction) pairs — used for the coverage
    figures' textual rendering."""
    out = []
    if title:
        out.append(title)
    max_label = max((len(label) for label, _ in entries), default=0)
    for label, fraction in entries:
        bar = "#" * int(round(fraction * width))
        out.append(f"{label.ljust(max_label)} |{bar.ljust(width)}| "
                   f"{fraction:6.1%}")
    return "\n".join(out)


def format_curve(series, width: int = 60, title: str = "") -> str:
    """Textual multi-series curve: one row per sampled x position.

    ``series`` maps label → list of (x, y) points with y in [0, 1].
    """
    out = []
    if title:
        out.append(title)
    labels = list(series)
    xs = sorted({x for pts in series.values() for x, _ in pts})
    if not xs:
        return "\n".join(out)
    sample_xs = xs[:: max(1, len(xs) // 12)]
    header = "x".rjust(12) + "".join(label.rjust(12) for label in labels)
    out.append(header)
    for x in sample_xs:
        row = f"{x:12d}"
        for label in labels:
            y = _value_at(series[label], x)
            row += f"{y:12.1%}"
        out.append(row)
    return "\n".join(out)


def _value_at(points, x: int) -> float:
    best = 0.0
    for px, py in points:
        if px <= x:
            best = py
        else:
            break
    return best
