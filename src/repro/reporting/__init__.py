"""Result aggregation and paper-style table rendering."""

from repro.reporting.findings import (
    FindingsReport,
    aggregate_findings,
    format_findings_report,
)
from repro.reporting.results import (
    BugDetectionCell,
    aggregate_fuzzer_detection,
    aggregate_static_detection,
    score_against_ground_truth,
)
from repro.reporting.tables import format_table, format_percentage_bars

__all__ = [
    "BugDetectionCell",
    "FindingsReport",
    "aggregate_findings",
    "aggregate_fuzzer_detection",
    "aggregate_static_detection",
    "format_findings_report",
    "score_against_ground_truth",
    "format_table",
    "format_percentage_bars",
]
