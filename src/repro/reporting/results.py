"""Scoring detection results against corpus ground truth (Table III/IV)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.oracles.base import ALL_BUG_CLASSES, BugClass


@dataclass
class BugDetectionCell:
    """One Table III cell: TP / FN / timeout-or-error counts."""

    tp: int = 0
    fn: int = 0
    failed: int = 0
    supported: bool = True

    def __str__(self) -> str:
        if not self.supported:
            return "n/a"
        return f"{self.tp} / {self.fn} / {self.failed}"


def score_against_ground_truth(contract, found: set,
                               count_lookalikes: bool = False) -> tuple:
    """Split a tool's per-contract findings into (tps, fns, fps) class sets.

    Findings matching ``benign_lookalikes`` are not counted as false
    positives unless ``count_lookalikes`` (Table IV counts them)."""
    expected = contract.expected_bugs
    tps = found & expected
    fns = expected - found
    fps = found - expected
    if not count_lookalikes:
        fps -= contract.benign_lookalikes
    return tps, fns, fps


def aggregate_fuzzer_detection(corpus, results, supported=None) -> dict:
    """Table III row for a fuzzer: {BugClass: BugDetectionCell}.

    ``results`` maps contract name → CampaignResult.  ``supported``
    restricts the classes the tool can detect (Table I row)."""
    supported = set(supported) if supported is not None else set(
        ALL_BUG_CLASSES)
    cells = {bc: BugDetectionCell(supported=bc in supported)
             for bc in ALL_BUG_CLASSES}
    for contract in corpus:
        result = results.get(contract.name)
        found = result.bug_classes if result is not None else set()
        for bc in contract.expected_bugs:
            if bc not in supported:
                continue
            if bc in found:
                cells[bc].tp += 1
            else:
                cells[bc].fn += 1
    return cells


def aggregate_static_detection(corpus, results) -> dict:
    """Table III row for a static tool: {BugClass: BugDetectionCell}.

    ``results`` maps contract name → StaticAnalysisResult; timeout/error
    contracts count in the ``failed`` column for each of their annotated
    classes (the paper's timeout-or-error cases)."""
    cells: dict = {bc: BugDetectionCell() for bc in ALL_BUG_CLASSES}
    supported: set = set()
    for contract in corpus:
        result = results.get(contract.name)
        if result is None:
            continue
        supported |= set(getattr(result, "findings", set()))
    for contract in corpus:
        result = results[contract.name]
        for bc in contract.expected_bugs:
            if not result.ok:
                cells[bc].failed += 1
            elif bc in result.findings:
                cells[bc].tp += 1
            else:
                cells[bc].fn += 1
    return cells


def mark_unsupported(cells: dict, supported) -> dict:
    """Set the ``supported`` flag on cells from a tool capability set."""
    for bc, cell in cells.items():
        cell.supported = bc in set(supported)
    return cells


def totals(cells: dict) -> BugDetectionCell:
    """Sum the supported cells of one tool row."""
    out = BugDetectionCell()
    for cell in cells.values():
        if cell.supported:
            out.tp += cell.tp
            out.fn += cell.fn
            out.failed += cell.failed
    return out
