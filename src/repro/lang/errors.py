"""MiniSol front-end errors, all carrying source positions."""

from __future__ import annotations


class MiniSolError(Exception):
    """Base class for MiniSol front-end failures."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"line {line}:{column}: {message}"
        super().__init__(message)


class LexerError(MiniSolError):
    """Invalid character or malformed literal."""


class ParserError(MiniSolError):
    """Token stream does not match the grammar."""


class TypeError_(MiniSolError):
    """Semantic check failed (undeclared name, bad operand type, ...)."""
