"""MiniSol's type lattice.

Every runtime value occupies one 256-bit EVM word, so types mostly matter for
the front end (name resolution, ABI descriptions, fuzzer input generation)
and for signedness of comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Type:
    """A MiniSol type: elementary or a mapping."""

    kind: str  # 'uint' | 'int' | 'bool' | 'address' | 'bytes32' | 'mapping'
    key: "Type | None" = None
    value: "Type | None" = None

    @property
    def is_mapping(self) -> bool:
        return self.kind == "mapping"

    @property
    def is_signed(self) -> bool:
        return self.kind == "int"

    def __str__(self) -> str:
        if self.is_mapping:
            return f"mapping({self.key} => {self.value})"
        return {"uint": "uint256", "int": "int256"}.get(self.kind, self.kind)


UINT = Type("uint")
INT = Type("int")
BOOL = Type("bool")
ADDRESS = Type("address")
BYTES32 = Type("bytes32")

_ELEMENTARY = {
    "uint": UINT,
    "uint256": UINT,
    "int": INT,
    "int256": INT,
    "bool": BOOL,
    "address": ADDRESS,
    "bytes32": BYTES32,
}


def elementary(name: str) -> Type:
    """Resolve an elementary type keyword to its :class:`Type`."""
    try:
        return _ELEMENTARY[name]
    except KeyError:
        raise KeyError(f"not an elementary type: {name}") from None


def is_type_keyword(name: str) -> bool:
    """True if ``name`` begins a type (elementary keyword or ``mapping``)."""
    return name in _ELEMENTARY or name == "mapping"


def mapping_of(key: Type, value: Type) -> Type:
    """Construct ``mapping(key => value)``."""
    return Type("mapping", key=key, value=value)
