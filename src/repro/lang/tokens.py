"""Token definitions for the MiniSol lexer."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto


class TokenKind(Enum):
    """Lexical token categories."""

    IDENT = auto()
    NUMBER = auto()
    STRING = auto()
    KEYWORD = auto()
    PUNCT = auto()
    EOF = auto()


#: Reserved words. Anything else alphanumeric is an IDENT.
KEYWORDS = frozenset({
    "contract", "function", "constructor", "modifier", "event", "emit",
    "mapping", "returns", "return", "if", "else", "while", "for",
    "require", "assert", "revert", "true", "false",
    "public", "private", "internal", "external", "payable", "view", "pure",
    "uint", "uint256", "int", "int256", "bool", "address", "bytes32",
    "msg", "block", "tx", "this", "now",
    "ether", "finney", "szabo", "wei",
    "selfdestruct", "keccak256",
})

#: Multi-character punctuation, longest first so the lexer is greedy.
MULTI_PUNCT = (
    "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=", "++", "--",
)

SINGLE_PUNCT = frozenset("+-*/%<>=!;,(){}[].&|^~_")


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position."""

    kind: TokenKind
    text: str
    line: int
    column: int
    value: int | None = None  # numeric value for NUMBER tokens

    def is_keyword(self, word: str) -> bool:
        return self.kind == TokenKind.KEYWORD and self.text == word

    def is_punct(self, text: str) -> bool:
        return self.kind == TokenKind.PUNCT and self.text == text

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r}, L{self.line})"
