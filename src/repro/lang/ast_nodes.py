"""MiniSol abstract syntax tree.

Every node carries ``line`` so diagnostics, source maps, and the paper-style
"bug at line N" reports stay meaningful.  The data-flow analysis
(:mod:`repro.analysis.dataflow`) and the compiler both walk this tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.types import Type


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr:
    """Base expression node."""

    line: int = 0


@dataclass
class IntLit(Expr):
    """Integer literal (unit multipliers already applied)."""

    value: int = 0


@dataclass
class BoolLit(Expr):
    """``true`` / ``false``."""

    value: bool = False


@dataclass
class StringLit(Expr):
    """String literal (only used as require/revert messages)."""

    value: str = ""


@dataclass
class Ident(Expr):
    """Reference to a state variable, local, or parameter."""

    name: str = ""


@dataclass
class Index(Expr):
    """Mapping access ``base[key]``."""

    base: str = ""
    key: Expr = field(default_factory=Expr)


@dataclass
class Binary(Expr):
    """Binary operation; op in + - * / % < > <= >= == != && || & | ^."""

    op: str = "+"
    left: Expr = field(default_factory=Expr)
    right: Expr = field(default_factory=Expr)


@dataclass
class Unary(Expr):
    """Unary operation; op in ! -."""

    op: str = "!"
    operand: Expr = field(default_factory=Expr)


@dataclass
class EnvRead(Expr):
    """Environment read: one of
    msg.sender, msg.value, tx.origin, block.timestamp, block.number,
    block.coinbase, block.difficulty, this (address), this.balance.
    """

    what: str = "msg.sender"


@dataclass
class BalanceOf(Expr):
    """``<address-expr>.balance``."""

    target: Expr = field(default_factory=Expr)


@dataclass
class Keccak(Expr):
    """``keccak256(a, b, ...)`` over word-packed arguments."""

    args: list = field(default_factory=list)


@dataclass
class InternalCall(Expr):
    """Call to another function of the same contract."""

    name: str = ""
    args: list = field(default_factory=list)


@dataclass
class Send(Expr):
    """``target.send(amount)`` — 2300-gas value transfer, returns bool."""

    target: Expr = field(default_factory=Expr)
    amount: Expr = field(default_factory=Expr)


@dataclass
class CallValue(Expr):
    """``target.call.value(amount)()`` — value transfer forwarding gas,
    returns bool.  The reentrancy-capable primitive."""

    target: Expr = field(default_factory=Expr)
    amount: Expr = field(default_factory=Expr)


@dataclass
class Delegatecall(Expr):
    """``target.delegatecall(data)`` — returns bool."""

    target: Expr = field(default_factory=Expr)
    data: Expr = field(default_factory=Expr)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    """Base statement node."""

    line: int = 0


@dataclass
class Block(Stmt):
    """``{ ... }``."""

    statements: list = field(default_factory=list)


@dataclass
class VarDecl(Stmt):
    """Local variable declaration with optional initializer."""

    var_type: Type = None  # type: ignore[assignment]
    name: str = ""
    init: Expr | None = None


@dataclass
class Assign(Stmt):
    """Assignment to an identifier or mapping element; op in = += -= *= /=."""

    target: Expr = field(default_factory=Expr)  # Ident or Index
    op: str = "="
    value: Expr = field(default_factory=Expr)


@dataclass
class If(Stmt):
    """``if (cond) then [else other]``."""

    cond: Expr = field(default_factory=Expr)
    then: Stmt = field(default_factory=Stmt)
    otherwise: Stmt | None = None


@dataclass
class While(Stmt):
    """``while (cond) body``."""

    cond: Expr = field(default_factory=Expr)
    body: Stmt = field(default_factory=Stmt)


@dataclass
class For(Stmt):
    """``for (init; cond; update) body``."""

    init: Stmt | None = None
    cond: Expr | None = None
    update: Stmt | None = None
    body: Stmt = field(default_factory=Stmt)


@dataclass
class Require(Stmt):
    """``require(cond[, message])`` — reverts when cond is false."""

    cond: Expr = field(default_factory=Expr)
    message: str = ""


@dataclass
class AssertStmt(Stmt):
    """``assert(cond)`` — INVALID when cond is false (distinct from require,
    which reverts; the unhandled-exception oracle keys off INVALID)."""

    cond: Expr = field(default_factory=Expr)


@dataclass
class RevertStmt(Stmt):
    """``revert([message])``."""

    message: str = ""


@dataclass
class Return(Stmt):
    """``return [expr]``."""

    value: Expr | None = None


@dataclass
class ExprStmt(Stmt):
    """An expression evaluated for effect; result discarded."""

    expr: Expr = field(default_factory=Expr)


@dataclass
class Transfer(Stmt):
    """``target.transfer(amount)`` — reverts on failure."""

    target: Expr = field(default_factory=Expr)
    amount: Expr = field(default_factory=Expr)


@dataclass
class SelfDestructStmt(Stmt):
    """``selfdestruct(beneficiary)``."""

    beneficiary: Expr = field(default_factory=Expr)


@dataclass
class Emit(Stmt):
    """``emit EventName(args...)``."""

    name: str = ""
    args: list = field(default_factory=list)


@dataclass
class Placeholder(Stmt):
    """The ``_;`` inside a modifier body where the function body is spliced."""


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass
class Param:
    """One function parameter."""

    param_type: Type
    name: str
    line: int = 0


@dataclass
class StateVarDecl:
    """A contract storage variable."""

    var_type: Type
    name: str
    init: Expr | None = None
    line: int = 0
    visibility: str = "internal"


@dataclass
class ModifierDef:
    """A modifier declaration; body contains exactly one Placeholder."""

    name: str
    params: list = field(default_factory=list)
    body: Block = field(default_factory=Block)
    line: int = 0


@dataclass
class EventDef:
    """An event declaration (metadata only; emits compile to LOG)."""

    name: str
    params: list = field(default_factory=list)
    line: int = 0


@dataclass
class FunctionDef:
    """A function or constructor."""

    name: str
    params: list = field(default_factory=list)
    returns: Type | None = None
    visibility: str = "public"
    payable: bool = False
    mutability: str = ""  # '', 'view', 'pure'
    modifiers: list = field(default_factory=list)  # modifier names
    body: Block = field(default_factory=Block)
    is_constructor: bool = False
    line: int = 0

    @property
    def is_external(self) -> bool:
        """Dispatched from calldata (public/external, not constructor)."""
        return (not self.is_constructor
                and self.visibility in ("public", "external"))


@dataclass
class ContractDef:
    """A full contract."""

    name: str
    state_vars: list = field(default_factory=list)
    functions: list = field(default_factory=list)
    modifiers: list = field(default_factory=list)
    events: list = field(default_factory=list)
    line: int = 0

    @property
    def constructor(self) -> FunctionDef | None:
        for fn in self.functions:
            if fn.is_constructor:
                return fn
        return None

    @property
    def external_functions(self) -> list:
        return [fn for fn in self.functions if fn.is_external]

    def function(self, name: str) -> FunctionDef:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(f"no function {name!r} in contract {self.name}")

    def state_var(self, name: str) -> StateVarDecl:
        for var in self.state_vars:
            if var.name == name:
                return var
        raise KeyError(f"no state variable {name!r} in contract {self.name}")


@dataclass
class SourceUnit:
    """Top level: one or more contracts from one source text."""

    contracts: list = field(default_factory=list)

    def contract(self, name: str) -> ContractDef:
        for c in self.contracts:
            if c.name == name:
                return c
        raise KeyError(f"no contract {name!r}")
