"""The MiniSol parser: token stream → AST.

A hand-written recursive-descent parser with precedence-climbing expression
parsing.  The grammar is the Solidity subset described in
:mod:`repro.lang.__init__`; anything outside it raises
:class:`~repro.lang.errors.ParserError` with a source position.
"""

from __future__ import annotations

from repro.lang import ast_nodes as ast
from repro.lang.errors import ParserError
from repro.lang.lexer import tokenize
from repro.lang.tokens import Token, TokenKind
from repro.lang.types import Type, elementary, is_type_keyword, mapping_of

#: Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "+": 8, "-": 8,
    "*": 9, "/": 9, "%": 9,
}

_UNIT_MULTIPLIERS = {
    "wei": 1,
    "szabo": 10 ** 12,
    "finney": 10 ** 15,
    "ether": 10 ** 18,
}

_ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=")


class _TransferExpr(ast.Expr):
    """Parser-internal marker: ``x.transfer(amount)`` parsed in expression
    position; converted to a Transfer statement at statement level."""

    def __init__(self, target: ast.Expr, amount: ast.Expr, line: int) -> None:
        super().__init__(line=line)
        self.target = target
        self.amount = amount


class Parser:
    """Parses one source text into a :class:`~repro.lang.ast_nodes.SourceUnit`."""

    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token helpers -----------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        i = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[i]

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != TokenKind.EOF:
            self.pos += 1
        return token

    def _error(self, message: str) -> ParserError:
        token = self._peek()
        return ParserError(f"{message} (found {token.text!r})",
                           token.line, token.column)

    def _expect_punct(self, text: str) -> Token:
        token = self._peek()
        if not token.is_punct(text):
            raise self._error(f"expected {text!r}")
        return self._advance()

    def _expect_keyword(self, word: str) -> Token:
        token = self._peek()
        if not token.is_keyword(word):
            raise self._error(f"expected keyword {word!r}")
        return self._advance()

    def _expect_ident(self) -> Token:
        token = self._peek()
        if token.kind != TokenKind.IDENT:
            raise self._error("expected identifier")
        return self._advance()

    def _match_punct(self, text: str) -> bool:
        if self._peek().is_punct(text):
            self._advance()
            return True
        return False

    def _match_keyword(self, word: str) -> bool:
        if self._peek().is_keyword(word):
            self._advance()
            return True
        return False

    # -- entry point --------------------------------------------------------------

    def parse(self) -> ast.SourceUnit:
        unit = ast.SourceUnit()
        while self._peek().kind != TokenKind.EOF:
            # Tolerate a pragma-style line: `pragma ...;`
            if self._peek().kind == TokenKind.IDENT and self._peek().text == "pragma":
                while not self._peek().is_punct(";"):
                    if self._peek().kind == TokenKind.EOF:
                        raise self._error("unterminated pragma")
                    self._advance()
                self._advance()
                continue
            unit.contracts.append(self._parse_contract())
        if not unit.contracts:
            raise ParserError("source contains no contract")
        return unit

    # -- contracts ------------------------------------------------------------------

    def _parse_contract(self) -> ast.ContractDef:
        start = self._expect_keyword("contract")
        name = self._expect_ident().text
        contract = ast.ContractDef(name=name, line=start.line)
        self._expect_punct("{")
        while not self._peek().is_punct("}"):
            self._parse_member(contract)
        self._expect_punct("}")
        return contract

    def _parse_member(self, contract: ast.ContractDef) -> None:
        token = self._peek()
        if token.is_keyword("function") or token.is_keyword("constructor"):
            contract.functions.append(self._parse_function())
        elif token.is_keyword("modifier"):
            contract.modifiers.append(self._parse_modifier())
        elif token.is_keyword("event"):
            contract.events.append(self._parse_event())
        elif token.kind == TokenKind.KEYWORD and is_type_keyword(token.text):
            contract.state_vars.append(self._parse_state_var())
        else:
            raise self._error("expected contract member")

    def _parse_type(self) -> Type:
        token = self._peek()
        if token.is_keyword("mapping"):
            self._advance()
            self._expect_punct("(")
            key = self._parse_type()
            self._expect_punct("=>")
            value = self._parse_type()
            self._expect_punct(")")
            return mapping_of(key, value)
        if token.kind == TokenKind.KEYWORD and is_type_keyword(token.text):
            self._advance()
            return elementary(token.text)
        raise self._error("expected type")

    def _parse_state_var(self) -> ast.StateVarDecl:
        line = self._peek().line
        var_type = self._parse_type()
        visibility = "internal"
        if self._peek().kind == TokenKind.KEYWORD and self._peek().text in (
                "public", "private", "internal"):
            visibility = self._advance().text
        name = self._expect_ident().text
        init = None
        if self._match_punct("="):
            init = self._parse_expression()
        self._expect_punct(";")
        return ast.StateVarDecl(var_type=var_type, name=name, init=init,
                                line=line, visibility=visibility)

    def _parse_event(self) -> ast.EventDef:
        start = self._expect_keyword("event")
        name = self._expect_ident().text
        params = self._parse_params(allow_indexed=True)
        self._expect_punct(";")
        return ast.EventDef(name=name, params=params, line=start.line)

    def _parse_modifier(self) -> ast.ModifierDef:
        start = self._expect_keyword("modifier")
        name = self._expect_ident().text
        params = []
        if self._peek().is_punct("("):
            params = self._parse_params()
        body = self._parse_block()
        if not _contains_placeholder(body):
            raise ParserError(f"modifier {name} has no `_;` placeholder",
                              start.line, start.column)
        return ast.ModifierDef(name=name, params=params, body=body,
                               line=start.line)

    def _parse_params(self, allow_indexed: bool = False) -> list:
        self._expect_punct("(")
        params: list[ast.Param] = []
        while not self._peek().is_punct(")"):
            if params:
                self._expect_punct(",")
            line = self._peek().line
            param_type = self._parse_type()
            if allow_indexed and self._peek().kind == TokenKind.IDENT \
                    and self._peek().text == "indexed":
                self._advance()
            pname = self._expect_ident().text
            params.append(ast.Param(param_type=param_type, name=pname,
                                    line=line))
        self._expect_punct(")")
        return params

    def _parse_function(self) -> ast.FunctionDef:
        token = self._advance()  # 'function' or 'constructor'
        is_constructor = token.is_keyword("constructor")
        if is_constructor:
            name = "constructor"
        else:
            name = self._expect_ident().text
        params = self._parse_params()

        visibility = "public"
        payable = False
        mutability = ""
        modifiers: list[str] = []
        returns: Type | None = None
        while True:
            nxt = self._peek()
            if nxt.kind == TokenKind.KEYWORD and nxt.text in (
                    "public", "private", "internal", "external"):
                visibility = self._advance().text
            elif nxt.is_keyword("payable"):
                payable = True
                self._advance()
            elif nxt.kind == TokenKind.KEYWORD and nxt.text in ("view", "pure"):
                mutability = self._advance().text
            elif nxt.is_keyword("returns"):
                self._advance()
                self._expect_punct("(")
                returns = self._parse_type()
                # tolerate a name for the return value
                if self._peek().kind == TokenKind.IDENT:
                    self._advance()
                self._expect_punct(")")
            elif nxt.kind == TokenKind.IDENT and not nxt.is_punct("{"):
                modifiers.append(self._advance().text)
                if self._match_punct("("):
                    self._expect_punct(")")
            else:
                break
        body = self._parse_block()
        return ast.FunctionDef(
            name=name, params=params, returns=returns, visibility=visibility,
            payable=payable, mutability=mutability, modifiers=modifiers,
            body=body, is_constructor=is_constructor, line=token.line)

    # -- statements ---------------------------------------------------------------------

    def _parse_block(self) -> ast.Block:
        start = self._expect_punct("{")
        statements: list[ast.Stmt] = []
        while not self._peek().is_punct("}"):
            if self._peek().kind == TokenKind.EOF:
                raise self._error("unterminated block")
            statements.append(self._parse_statement())
        self._expect_punct("}")
        return ast.Block(statements=statements, line=start.line)

    def _parse_statement(self) -> ast.Stmt:
        token = self._peek()

        if token.is_punct("{"):
            return self._parse_block()
        if token.text == "_" and token.kind in (TokenKind.IDENT,
                                                TokenKind.PUNCT):
            line = self._advance().line
            self._expect_punct(";")
            return ast.Placeholder(line=line)
        if token.is_keyword("if"):
            return self._parse_if()
        if token.is_keyword("while"):
            return self._parse_while()
        if token.is_keyword("for"):
            return self._parse_for()
        if token.is_keyword("require"):
            return self._parse_require()
        if token.is_keyword("assert"):
            return self._parse_assert()
        if token.is_keyword("revert"):
            return self._parse_revert()
        if token.is_keyword("return"):
            return self._parse_return()
        if token.is_keyword("emit"):
            return self._parse_emit()
        if token.is_keyword("selfdestruct"):
            self._advance()
            self._expect_punct("(")
            beneficiary = self._parse_expression()
            self._expect_punct(")")
            self._expect_punct(";")
            return ast.SelfDestructStmt(beneficiary=beneficiary,
                                        line=token.line)
        if token.kind == TokenKind.KEYWORD and is_type_keyword(token.text) \
                and not self._peek(1).is_punct("("):
            return self._parse_local_decl()

        stmt = self._parse_simple_statement()
        self._expect_punct(";")
        return stmt

    def _parse_local_decl(self) -> ast.VarDecl:
        line = self._peek().line
        var_type = self._parse_type()
        if var_type.is_mapping:
            raise ParserError("mapping locals are not supported", line, 0)
        name = self._expect_ident().text
        init = None
        if self._match_punct("="):
            init = self._parse_expression()
        self._expect_punct(";")
        return ast.VarDecl(var_type=var_type, name=name, init=init, line=line)

    def _parse_simple_statement(self) -> ast.Stmt:
        """An assignment / increment / expression, without the ';'."""
        line = self._peek().line
        expr = self._parse_expression()

        nxt = self._peek()
        if nxt.kind == TokenKind.PUNCT and nxt.text in _ASSIGN_OPS:
            if not isinstance(expr, (ast.Ident, ast.Index)):
                raise self._error("invalid assignment target")
            op = self._advance().text
            value = self._parse_expression()
            return ast.Assign(target=expr, op=op, value=value, line=line)
        if nxt.is_punct("++") or nxt.is_punct("--"):
            if not isinstance(expr, (ast.Ident, ast.Index)):
                raise self._error("invalid increment target")
            op = "+=" if self._advance().text == "++" else "-="
            return ast.Assign(target=expr, op=op,
                              value=ast.IntLit(value=1, line=line), line=line)
        if isinstance(expr, _TransferExpr):
            return ast.Transfer(target=expr.target, amount=expr.amount,
                                line=expr.line)
        return ast.ExprStmt(expr=expr, line=line)

    def _parse_if(self) -> ast.If:
        start = self._expect_keyword("if")
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        then = self._parse_statement()
        otherwise = None
        if self._match_keyword("else"):
            otherwise = self._parse_statement()
        return ast.If(cond=cond, then=then, otherwise=otherwise,
                      line=start.line)

    def _parse_while(self) -> ast.While:
        start = self._expect_keyword("while")
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        body = self._parse_statement()
        return ast.While(cond=cond, body=body, line=start.line)

    def _parse_for(self) -> ast.For:
        start = self._expect_keyword("for")
        self._expect_punct("(")
        init: ast.Stmt | None = None
        if not self._peek().is_punct(";"):
            if self._peek().kind == TokenKind.KEYWORD and \
                    is_type_keyword(self._peek().text):
                init = self._parse_local_decl()  # consumes its ';'
            else:
                init = self._parse_simple_statement()
                self._expect_punct(";")
        else:
            self._advance()
        cond: ast.Expr | None = None
        if not self._peek().is_punct(";"):
            cond = self._parse_expression()
        self._expect_punct(";")
        update: ast.Stmt | None = None
        if not self._peek().is_punct(")"):
            update = self._parse_simple_statement()
        self._expect_punct(")")
        body = self._parse_statement()
        return ast.For(init=init, cond=cond, update=update, body=body,
                       line=start.line)

    def _parse_require(self) -> ast.Require:
        start = self._expect_keyword("require")
        self._expect_punct("(")
        cond = self._parse_expression()
        message = ""
        if self._match_punct(","):
            token = self._peek()
            if token.kind != TokenKind.STRING:
                raise self._error("require message must be a string literal")
            message = self._advance().text
        self._expect_punct(")")
        self._expect_punct(";")
        return ast.Require(cond=cond, message=message, line=start.line)

    def _parse_assert(self) -> ast.AssertStmt:
        start = self._expect_keyword("assert")
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        self._expect_punct(";")
        return ast.AssertStmt(cond=cond, line=start.line)

    def _parse_revert(self) -> ast.RevertStmt:
        start = self._expect_keyword("revert")
        message = ""
        if self._match_punct("("):
            if self._peek().kind == TokenKind.STRING:
                message = self._advance().text
            self._expect_punct(")")
        self._expect_punct(";")
        return ast.RevertStmt(message=message, line=start.line)

    def _parse_return(self) -> ast.Return:
        start = self._expect_keyword("return")
        value = None
        if not self._peek().is_punct(";"):
            value = self._parse_expression()
        self._expect_punct(";")
        return ast.Return(value=value, line=start.line)

    def _parse_emit(self) -> ast.Emit:
        start = self._expect_keyword("emit")
        name = self._expect_ident().text
        self._expect_punct("(")
        args: list[ast.Expr] = []
        while not self._peek().is_punct(")"):
            if args:
                self._expect_punct(",")
            args.append(self._parse_expression())
        self._expect_punct(")")
        self._expect_punct(";")
        return ast.Emit(name=name, args=args, line=start.line)

    # -- expressions -----------------------------------------------------------------------

    def _parse_expression(self, min_prec: int = 1) -> ast.Expr:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token.kind != TokenKind.PUNCT:
                return left
            prec = _PRECEDENCE.get(token.text)
            if prec is None or prec < min_prec:
                return left
            op = self._advance().text
            right = self._parse_expression(prec + 1)
            left = ast.Binary(op=op, left=left, right=right, line=token.line)

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.is_punct("!") or token.is_punct("-"):
            self._advance()
            operand = self._parse_unary()
            return ast.Unary(op=token.text, operand=operand, line=token.line)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            token = self._peek()
            if token.is_punct("."):
                expr = self._parse_member_access(expr)
            elif token.is_punct("[") and isinstance(expr, ast.Ident):
                self._advance()
                key = self._parse_expression()
                self._expect_punct("]")
                expr = ast.Index(base=expr.name, key=key, line=token.line)
            elif token.is_punct("(") and isinstance(expr, ast.Ident):
                args = self._parse_call_args()
                expr = ast.InternalCall(name=expr.name, args=args,
                                        line=token.line)
            else:
                return expr

    def _parse_call_args(self) -> list:
        self._expect_punct("(")
        args: list[ast.Expr] = []
        while not self._peek().is_punct(")"):
            if args:
                self._expect_punct(",")
            args.append(self._parse_expression())
        self._expect_punct(")")
        return args

    def _parse_member_access(self, base: ast.Expr) -> ast.Expr:
        dot = self._expect_punct(".")
        token = self._peek()
        name = token.text
        if token.kind not in (TokenKind.IDENT, TokenKind.KEYWORD):
            raise self._error("expected member name")
        self._advance()

        if name in ("encodePacked", "encode") and isinstance(base, ast.Ident) \
                and base.name == "abi":
            args = self._parse_call_args()
            return ast.InternalCall(name="encodePacked", args=args,
                                    line=dot.line)
        if name == "balance":
            if isinstance(base, ast.EnvRead) and base.what == "this":
                return ast.EnvRead(what="this.balance", line=dot.line)
            return ast.BalanceOf(target=base, line=dot.line)
        if name == "transfer":
            self._expect_punct("(")
            amount = self._parse_expression()
            self._expect_punct(")")
            return _TransferExpr(base, amount, dot.line)
        if name == "send":
            self._expect_punct("(")
            amount = self._parse_expression()
            self._expect_punct(")")
            return ast.Send(target=base, amount=amount, line=dot.line)
        if name == "call":
            # .call.value(amount)()   [optionally with empty final parens]
            self._expect_punct(".")
            value_kw = self._peek()
            if value_kw.text != "value":
                raise self._error("expected `.call.value(...)`")
            self._advance()
            self._expect_punct("(")
            amount = self._parse_expression()
            self._expect_punct(")")
            if self._match_punct("("):
                self._expect_punct(")")
            return ast.CallValue(target=base, amount=amount, line=dot.line)
        if name == "delegatecall":
            self._expect_punct("(")
            data = self._parse_expression()
            self._expect_punct(")")
            return ast.Delegatecall(target=base, data=data, line=dot.line)
        raise ParserError(f"unknown member {name!r}", dot.line, dot.column)

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()

        if token.kind == TokenKind.NUMBER:
            self._advance()
            value = token.value or 0
            nxt = self._peek()
            if nxt.kind == TokenKind.KEYWORD and nxt.text in _UNIT_MULTIPLIERS:
                self._advance()
                value *= _UNIT_MULTIPLIERS[nxt.text]
            return ast.IntLit(value=value, line=token.line)

        if token.kind == TokenKind.STRING:
            self._advance()
            return ast.StringLit(value=token.text, line=token.line)

        if token.is_keyword("true") or token.is_keyword("false"):
            self._advance()
            return ast.BoolLit(value=token.text == "true", line=token.line)

        if token.is_keyword("msg"):
            self._advance()
            self._expect_punct(".")
            member = self._advance().text
            if member == "sender":
                return ast.EnvRead(what="msg.sender", line=token.line)
            if member == "value":
                return ast.EnvRead(what="msg.value", line=token.line)
            raise ParserError(f"unknown msg member {member!r}",
                              token.line, token.column)

        if token.is_keyword("block"):
            self._advance()
            self._expect_punct(".")
            member = self._advance().text
            if member in ("timestamp", "number", "coinbase", "difficulty"):
                return ast.EnvRead(what=f"block.{member}", line=token.line)
            raise ParserError(f"unknown block member {member!r}",
                              token.line, token.column)

        if token.is_keyword("tx"):
            self._advance()
            self._expect_punct(".")
            member = self._advance().text
            if member == "origin":
                return ast.EnvRead(what="tx.origin", line=token.line)
            raise ParserError(f"unknown tx member {member!r}",
                              token.line, token.column)

        if token.is_keyword("now"):
            self._advance()
            return ast.EnvRead(what="block.timestamp", line=token.line)

        if token.is_keyword("this"):
            self._advance()
            return ast.EnvRead(what="this", line=token.line)

        if token.is_keyword("keccak256"):
            self._advance()
            args = self._parse_call_args()
            return ast.Keccak(args=_flatten_abi_encode(args), line=token.line)

        if token.kind == TokenKind.KEYWORD and is_type_keyword(token.text):
            # Type cast: address(x), uint(x), ... — a no-op on words.
            self._advance()
            self._expect_punct("(")
            inner = self._parse_expression()
            self._expect_punct(")")
            return inner

        if token.kind == TokenKind.IDENT:
            self._advance()
            return ast.Ident(name=token.text, line=token.line)

        if token.is_punct("("):
            self._advance()
            expr = self._parse_expression()
            self._expect_punct(")")
            return expr

        raise self._error("expected expression")


def _flatten_abi_encode(args: list) -> list:
    """Unwrap ``abi.encodePacked``-style nesting: keccak256 of an internal
    call named ``encodePacked``/``abi`` is treated as keccak of its args."""
    out: list[ast.Expr] = []
    for arg in args:
        if isinstance(arg, ast.InternalCall) and arg.name in (
                "encodePacked", "encode"):
            out.extend(arg.args)
        else:
            out.append(arg)
    return out


def _contains_placeholder(stmt: ast.Stmt) -> bool:
    if isinstance(stmt, ast.Placeholder):
        return True
    if isinstance(stmt, ast.Block):
        return any(_contains_placeholder(s) for s in stmt.statements)
    if isinstance(stmt, ast.If):
        if _contains_placeholder(stmt.then):
            return True
        return stmt.otherwise is not None and _contains_placeholder(stmt.otherwise)
    return False


def parse_source(source: str) -> ast.SourceUnit:
    """Parse MiniSol ``source`` into a :class:`SourceUnit`."""
    return Parser(source).parse()
