"""MiniSol: a Solidity-subset language for the MuFuzz reproduction.

MiniSol covers the contract features the paper's benchmarks exercise:
contracts with typed state variables (including mappings), payable functions,
modifiers, require/assert, control flow, ether transfer primitives
(``transfer`` / ``send`` / ``call.value`` / ``delegatecall`` /
``selfdestruct``), and block/transaction context reads.  Source is parsed to
a typed AST which both the compiler and the data-flow analysis consume.
"""

from repro.lang.errors import LexerError, MiniSolError, ParserError, TypeError_
from repro.lang.tokens import Token, TokenKind
from repro.lang.lexer import Lexer, tokenize
from repro.lang import ast_nodes as ast
from repro.lang.parser import Parser, parse_source
from repro.lang.types import Type, UINT, INT, BOOL, ADDRESS, BYTES32, mapping_of

__all__ = [
    "MiniSolError",
    "LexerError",
    "ParserError",
    "TypeError_",
    "Token",
    "TokenKind",
    "Lexer",
    "tokenize",
    "ast",
    "Parser",
    "parse_source",
    "Type",
    "UINT",
    "INT",
    "BOOL",
    "ADDRESS",
    "BYTES32",
    "mapping_of",
]
