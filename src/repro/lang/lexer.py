"""The MiniSol lexer: source text → token stream."""

from __future__ import annotations

from repro.lang.errors import LexerError
from repro.lang.tokens import KEYWORDS, MULTI_PUNCT, SINGLE_PUNCT, Token, TokenKind


class Lexer:
    """A single-pass lexer with line/column tracking."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    def tokens(self) -> list[Token]:
        """Lex the full source, ending with an EOF token."""
        out: list[Token] = []
        while True:
            token = self._next_token()
            out.append(token)
            if token.kind == TokenKind.EOF:
                return out

    # -- internals -------------------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        i = self.pos + offset
        return self.source[i] if i < len(self.source) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.source):
                if self.source[self.pos] == "\n":
                    self.line += 1
                    self.column = 1
                else:
                    self.column += 1
                self.pos += 1

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.source) and not (
                        self._peek() == "*" and self._peek(1) == "/"):
                    self._advance()
                self._advance(2)
            else:
                return

    def _next_token(self) -> Token:
        self._skip_trivia()
        line, column = self.line, self.column
        ch = self._peek()
        if not ch:
            return Token(TokenKind.EOF, "", line, column)

        if ch.isdigit():
            return self._lex_number(line, column)

        if ch.isalpha() or ch == "_":
            return self._lex_word(line, column)

        if ch == '"':
            return self._lex_string(line, column)

        for punct in MULTI_PUNCT:
            if self.source.startswith(punct, self.pos):
                self._advance(len(punct))
                return Token(TokenKind.PUNCT, punct, line, column)

        if ch in SINGLE_PUNCT:
            self._advance()
            return Token(TokenKind.PUNCT, ch, line, column)

        raise LexerError(f"unexpected character {ch!r}", line, column)

    def _lex_number(self, line: int, column: int) -> Token:
        start = self.pos
        if self._peek() == "0" and self._peek(1) in "xX":
            self._advance(2)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
            text = self.source[start:self.pos]
            if len(text) <= 2:
                raise LexerError("malformed hex literal", line, column)
            return Token(TokenKind.NUMBER, text, line, column, int(text, 16))
        while self._peek().isdigit():
            self._advance()
        text = self.source[start:self.pos]
        return Token(TokenKind.NUMBER, text, line, column, int(text))

    def _lex_word(self, line: int, column: int) -> Token:
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[start:self.pos]
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
        return Token(kind, text, line, column)

    def _lex_string(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        start = self.pos
        while self._peek() and self._peek() != '"':
            if self._peek() == "\n":
                raise LexerError("unterminated string", line, column)
            self._advance()
        if not self._peek():
            raise LexerError("unterminated string", line, column)
        text = self.source[start:self.pos]
        self._advance()  # closing quote
        return Token(TokenKind.STRING, text, line, column)


def tokenize(source: str) -> list[Token]:
    """Convenience wrapper: lex ``source`` into a token list."""
    return Lexer(source).tokens()
