"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``fuzz FILE``      run a fuzzing campaign on a MiniSol source file
``campaign``       run a contract × fuzzer × trial matrix across workers
``report DIR``     aggregate persisted findings across runs
``top DIR``        live view of a running campaign matrix
``replay PATH``    re-trigger persisted findings from their witnesses
``compile FILE``   compile and print bytecode size, ABI, storage layout
``disasm FILE``    disassemble the runtime bytecode
``analyze FILE``   print the vulnerability surface + data-flow analysis
``scan FILE``      run the five static-analyzer models
``corpus``         generate and summarize the benchmark corpora

All user-facing output goes through the structured logger
(:mod:`repro.telemetry.log`): INFO renders bare on stdout (it *is* the
CLI output), warnings/errors go to stderr, and ``-q``/``-v``/
``--log-level`` tune the threshold.  Errors always pair a stderr message
with a nonzero exit code.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.analysis.dataflow import analyze_contract
from repro.analysis.disassembler import format_disassembly
from repro.baselines import STATIC_ANALYZERS
from repro.compiler import compile_cached
from repro.core import PRESET_CONFIGS, Fuzzer
from repro.reporting import format_percentage_bars, format_table
from repro.telemetry import log


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MuFuzz reproduction: smart-contract fuzzing toolkit")
    parser.add_argument("-q", "--quiet", action="count", default=0,
                        help="less output (-q = warnings and errors only, "
                             "-qq = errors only)")
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="more output (debug level)")
    parser.add_argument("--log-level", default=None,
                        choices=("debug", "info", "warning", "error"),
                        help="explicit log threshold (overrides -q/-v)")
    sub = parser.add_subparsers(dest="command", required=True)

    fuzz = sub.add_parser("fuzz", help="fuzz a MiniSol contract")
    fuzz.add_argument("file", help="MiniSol source file")
    fuzz.add_argument("--contract", default=None,
                      help="contract name (default: first in file)")
    fuzz.add_argument("--fuzzer", choices=sorted(PRESET_CONFIGS),
                      default="mufuzz")
    fuzz.add_argument("--iterations", type=int, default=None,
                      help="execution budget (default: 300 when no other "
                           "budget is given, else unlimited)")
    fuzz.add_argument("--seed", type=int, default=1)
    fuzz.add_argument("--time-budget", type=float, default=None,
                      metavar="SECONDS",
                      help="wall-clock budget; combines with the other "
                           "budgets (first exhausted stops the campaign)")
    fuzz.add_argument("--tx-budget", type=int, default=None, metavar="N",
                      help="transaction budget; combines with the other "
                           "budgets")
    fuzz.add_argument("--checkpoint-every", type=int, default=None,
                      metavar="N",
                      help="persist a resumable campaign checkpoint every "
                           "N executions (see --checkpoint-file)")
    fuzz.add_argument("--checkpoint-file", default=None, metavar="PATH",
                      help="checkpoint location (default: "
                           "FILE.checkpoint.json next to the source)")
    fuzz.add_argument("--resume", action="store_true",
                      help="resume from the checkpoint file if present "
                           "(byte-identical to an uninterrupted run)")
    fuzz.add_argument("--oracles", default=None, metavar="CLASSES",
                      help="restrict the campaign to these bug classes "
                           "(comma-separated codes, e.g. RE,IO; 'all' = "
                           "all nine, 'none' = coverage only). The "
                           "machine skips materializing trace events no "
                           "selected oracle subscribes to")
    fuzz.add_argument("--state-cache", action=argparse.BooleanOptionalAction,
                      default=None,
                      help="prefix-snapshot state cache: memoize "
                           "post-prefix chain states and fast-forward "
                           "shared prefixes instead of re-executing them "
                           "(default: on; a pure performance layer — "
                           "results are byte-identical either way)")
    fuzz.add_argument("--surface-pruning",
                      action=argparse.BooleanOptionalAction, default=None,
                      help="drop oracles whose bug class the vulnerability "
                           "surface proves impossible (whole-code opcode "
                           "absence, never a reachability heuristic) "
                           "(default: on; results are byte-identical "
                           "either way)")
    fuzz.add_argument("--state-cache-capacity", type=int, default=None,
                      metavar="N",
                      help="memoized prefix states to keep (default: 64; "
                           "leaf-first LRU eviction beyond that)")
    fuzz.add_argument("--block-fusion",
                      action=argparse.BooleanOptionalAction, default=None,
                      help="block-fused EVM execution: compile basic "
                           "blocks into superinstruction closures with "
                           "per-block gas prepay, constant folding, and "
                           "threaded jumps (default: on; results are "
                           "byte-identical either way)")
    fuzz.add_argument("--metrics", default=None, metavar="FILE",
                      help="collect telemetry during the campaign "
                           "(provably inert: results are byte-identical "
                           "with it on or off) and write the metrics "
                           "snapshot — counters, histograms, span times — "
                           "to FILE as canonical JSON")

    camp = sub.add_parser(
        "campaign",
        help="run a contract × fuzzer × trial matrix across worker "
             "processes, with resumable JSON result persistence")
    camp.add_argument("files", nargs="*",
                      help="MiniSol source files (default: a generated "
                           "corpus sample, see --dataset/--count)")
    camp.add_argument("--dataset", choices=("d1", "d2", "d3"), default="d2",
                      help="corpus to sample when no files are given")
    camp.add_argument("--count", type=int, default=4,
                      help="number of corpus contracts to fuzz")
    camp.add_argument("--fuzzers", nargs="+",
                      choices=sorted(PRESET_CONFIGS),
                      default=["mufuzz", "sfuzz"], metavar="FUZZER")
    camp.add_argument("--trials", type=int, default=2,
                      help="independent trials per (contract, fuzzer) cell")
    camp.add_argument("--iterations", type=int, default=None,
                      help="per-campaign execution budget (default: 100 "
                           "when no other budget is given, else unlimited)")
    camp.add_argument("--time-budget", type=float, default=None,
                      metavar="SECONDS",
                      help="per-campaign wall-clock budget; combines with "
                           "the other budgets")
    camp.add_argument("--tx-budget", type=int, default=None, metavar="N",
                      help="per-campaign transaction budget; combines with "
                           "the other budgets")
    camp.add_argument("--checkpoint-every", type=int, default=None,
                      metavar="N",
                      help="persist mid-campaign checkpoints to "
                           "--results-dir every N executions; an "
                           "interrupted matrix resumes mid-campaign")
    camp.add_argument("--seed", type=int, default=1,
                      help="matrix base seed; per-trial seeds derive "
                           "deterministically from it")
    camp.add_argument("--workers", type=int, default=None,
                      help="worker processes (default: all CPU cores; "
                           "1 = inline, no subprocesses — unless "
                           "--job-timeout forces isolation)")
    camp.add_argument("--results-dir", default=None,
                      help="persist per-job results here and skip "
                           "already-completed jobs on rerun")
    camp.add_argument("--store", choices=("json", "sqlite"), default=None,
                      help="result-store backend for --results-dir: json "
                           "= one canonical record file per job; sqlite = "
                           "one WAL-mode results.db with batched writes "
                           "and indexed resume/report queries. Default: "
                           "an existing store's own format, else "
                           "$REPRO_STORE, else json. The canonical "
                           "artifact is byte-identical either way")
    camp.add_argument("--job-timeout", type=float, default=None,
                      help="per-job wall-clock timeout in seconds, "
                           "measured from dispatch to a worker process — "
                           "a worker's first job also absorbs ~1s of "
                           "interpreter startup (every job does under "
                           "--backend spawn)")
    camp.add_argument("--backend", choices=("pool", "spawn", "inline"),
                      default=None,
                      help="execution backend (default: pool — persistent "
                           "workers with per-worker compile caches; inline "
                           "auto-selected at --workers 1 with no timeout). "
                           "spawn = one process per job, maximum "
                           "isolation; inline = no subprocesses. Results "
                           "are byte-identical across backends")
    camp.add_argument("--recycle-after", type=int, default=None,
                      metavar="K",
                      help="pool backend: retire and respawn each worker "
                           "after K jobs to bound per-process memory "
                           "growth")
    camp.add_argument("--oracles", default=None, metavar="CLASSES",
                      help="restrict every campaign to these bug classes "
                           "(comma-separated codes, e.g. RE,IO; 'all' = "
                           "all nine, 'none' = coverage only)")
    camp.add_argument("--state-cache", action=argparse.BooleanOptionalAction,
                      default=None,
                      help="pin the prefix-snapshot state cache on or off "
                           "for every campaign in the matrix (default: "
                           "the config default, on; results are "
                           "byte-identical either way)")
    camp.add_argument("--state-cache-capacity", type=int, default=None,
                      metavar="N",
                      help="per-campaign memoized prefix states to keep "
                           "(default: 64)")
    camp.add_argument("--block-fusion",
                      action=argparse.BooleanOptionalAction, default=None,
                      help="pin block-fused EVM execution on or off for "
                           "every campaign in the matrix (default: the "
                           "config default, on; results are byte-identical "
                           "either way)")
    camp.add_argument("--surface-pruning",
                      action=argparse.BooleanOptionalAction, default=None,
                      help="pin surface-proof oracle pruning on or off for "
                           "every campaign in the matrix (default: the "
                           "config default, on; results are byte-identical "
                           "either way)")
    camp.add_argument("--telemetry", action="store_true",
                      help="collect per-job telemetry and worker "
                           "heartbeats; with --results-dir the scheduler "
                           "publishes a live progress file 'repro top' "
                           "can follow. Results stay byte-identical")
    camp.add_argument("--metrics", default=None, metavar="FILE",
                      help="implies --telemetry; additionally write the "
                           "run's merged metrics (counters, histograms, "
                           "spans, throughput) to FILE as canonical JSON")

    report = sub.add_parser(
        "report",
        help="aggregate persisted findings across runs (per-class "
             "counts, severity rollups, per-contract tables)")
    report.add_argument("results_dir",
                        help="a results directory produced by 'repro "
                             "campaign --results-dir' (json or sqlite "
                             "store)")
    report.add_argument("--contract", default=None,
                        help="only findings in this contract")
    report.add_argument("--bug-class", default=None, metavar="CLASSES",
                        help="only these bug classes (comma-separated "
                             "codes, e.g. RE,IO)")
    report.add_argument("--severity", default=None,
                        choices=("high", "medium", "low"),
                        help="only findings of this severity")
    report.add_argument("--preset", default=None,
                        help="only findings reported by this fuzzer "
                             "preset")
    report.add_argument("--json", action="store_true",
                        help="emit the aggregated report as canonical "
                             "JSON instead of tables")

    top = sub.add_parser(
        "top",
        help="live view of a running campaign matrix (follows the "
             "telemetry file a 'campaign --telemetry --results-dir' run "
             "publishes)")
    top.add_argument("results_dir",
                     help="the campaign's --results-dir (or a direct path "
                          "to its live telemetry file)")
    top.add_argument("--interval", type=float, default=1.0,
                     metavar="SECONDS",
                     help="refresh interval (default: 1s)")
    top.add_argument("--once", action="store_true",
                     help="render one frame and exit (no refresh loop)")

    replay = sub.add_parser(
        "replay",
        help="re-execute persisted findings from their stored witnesses "
             "(deterministic re-trigger check)")
    replay.add_argument("paths", nargs="+", metavar="PATH",
                        help="result-store record files (*.json) or "
                             "results directories produced by 'repro "
                             "campaign --results-dir'")

    for name, help_text in (
            ("compile", "compile and show artifact summary"),
            ("disasm", "disassemble runtime bytecode"),
            ("analyze", "show the vulnerability surface and data-flow "
                        "analysis"),
            ("scan", "run the static-analyzer models")):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("file")
        cmd.add_argument("--contract", default=None)
        if name == "analyze":
            cmd.add_argument("--json", action="store_true",
                             help="emit the surface report as canonical "
                                  "JSON instead of tables")

    corpus = sub.add_parser("corpus", help="generate benchmark corpora")
    corpus.add_argument("--dataset", choices=("d1", "d2", "d3"),
                        default="d2")
    corpus.add_argument("--count", type=int, default=10)
    corpus.add_argument("--show-source", action="store_true")
    return parser


def _load(args) -> object:
    with open(args.file) as handle:
        source = handle.read()
    return compile_cached(source, args.contract)


def _resolve_iterations(args, default_iterations: int) -> int | None:
    """The effective iteration budget.

    An explicit ``--iterations`` always applies; otherwise the historical
    default is used *unless* another budget was given, in which case the
    iteration budget is lifted (open-ended, governed by time/transactions).
    """
    if args.iterations is not None:
        return args.iterations
    if args.time_budget is None and args.tx_budget is None:
        return default_iterations
    return None


def _budget_overrides(args, default_iterations: int) -> dict:
    """Config overrides for the three campaign budgets."""
    overrides: dict = {
        "iterations": _resolve_iterations(args, default_iterations)}
    if args.time_budget is not None:
        overrides["time_budget"] = args.time_budget
    if args.tx_budget is not None:
        overrides["tx_budget"] = args.tx_budget
    return overrides


def _parse_oracles(text: str | None):
    """``--oracles`` value → a ``bug_classes`` tuple (None = all nine).

    Accepts comma- or space-separated class codes, case-insensitive, plus
    the keywords ``all`` (no restriction) and ``none`` (coverage-only
    campaign, no oracles).  Raises ``ValueError`` on unknown codes.
    """
    from repro.core.config import normalize_bug_classes

    if text is None:
        return None
    token = text.strip().lower()
    if token == "all":
        return None
    if token == "none":
        return ()
    codes = [code.strip().upper()
             for code in text.replace(",", " ").split() if code.strip()]
    if not codes:
        raise ValueError(
            "no bug-class codes given (use 'all', 'none', or codes "
            "like RE,IO)")
    return normalize_bug_classes(codes)


def _findings_table(findings) -> str:
    """The findings report: most severe first, with triage metadata and
    witness length."""
    from repro.oracles.base import SEVERITIES

    ordered = sorted(findings,
                     key=lambda f: (SEVERITIES.index(f.severity),
                                    f.bug_class.value, f.pc))
    rows = [[f.bug_class.value, f.severity, f"{f.confidence:.2f}",
             f.line, len(f.witness), f.description]
            for f in ordered]
    return format_table(
        ["class", "severity", "conf", "line", "witness txs",
         "description"],
        rows, title="findings")


def _write_metrics_file(path, data: dict) -> None:
    """Persist a metrics snapshot as canonical JSON."""
    from repro.engine.checkpoint import canonical_json
    with open(path, "w") as handle:
        handle.write(canonical_json(data))
    log.info(f"metrics written to {path}")


def cmd_fuzz(args) -> int:
    from repro.orchestrator.store import CheckpointSession

    if args.checkpoint_every is not None and args.checkpoint_every < 1:
        log.error("error: --checkpoint-every must be >= 1")
        return 2
    if (args.checkpoint_file is not None and args.checkpoint_every is None
            and not args.resume):
        log.error("error: --checkpoint-file does nothing on its own; add "
                  "--checkpoint-every N (write checkpoints) or --resume "
                  "(read one)")
        return 2

    artifact = _load(args)
    overrides = _budget_overrides(args, default_iterations=300)
    try:
        bug_classes = _parse_oracles(args.oracles)
    except ValueError as exc:
        log.error(f"error: --oracles: {exc}")
        return 2
    if bug_classes is not None:
        overrides["bug_classes"] = bug_classes
    if args.state_cache is not None:
        overrides["use_state_cache"] = args.state_cache
    if args.state_cache_capacity is not None:
        if args.state_cache_capacity < 1:
            log.error("error: --state-cache-capacity must be >= 1")
            return 2
        overrides["state_cache_capacity"] = args.state_cache_capacity
    if args.surface_pruning is not None:
        overrides["use_surface_pruning"] = args.surface_pruning
    if args.block_fusion is not None:
        overrides["use_block_fusion"] = args.block_fusion
    config = PRESET_CONFIGS[args.fuzzer](rng_seed=args.seed, **overrides)

    session = None
    fuzzer = None
    if args.checkpoint_every is not None or args.resume:
        from repro.engine.checkpoint import checkpoint_fingerprint
        checkpoint_path = (args.checkpoint_file
                           or args.file + ".checkpoint.json")
        session = CheckpointSession(
            checkpoint_path,
            checkpoint_fingerprint(artifact.source, artifact.name, config),
            args.checkpoint_every)
        checkpoint = session.load()
        if (checkpoint is None and args.checkpoint_every is not None
                and os.path.exists(checkpoint_path)):
            # the file holds some *other* campaign's resumable state
            # (different source/contract/config/seed); our first emitted
            # checkpoint would destroy it
            log.error(f"error: {checkpoint_path} belongs to a different "
                      f"campaign; refusing to overwrite it — pass another "
                      f"--checkpoint-file or delete it first")
            return 2
        if args.resume:
            if checkpoint is not None:
                fuzzer = Fuzzer.resume(checkpoint, artifact=artifact)
                log.info(f"resumed from {session.path} "
                         f"at execution {fuzzer.executions}")
            else:
                log.info(f"no matching checkpoint at {session.path}; "
                         f"starting fresh")
    if fuzzer is None:
        fuzzer = Fuzzer(artifact, config)

    run_kwargs = session.run_kwargs() if session else {}
    if args.metrics:
        from repro.telemetry.progress import TelemetrySession
        with TelemetrySession() as telemetry:
            result = fuzzer.run(**run_kwargs)
    else:
        result = fuzzer.run(**run_kwargs)
    if session is not None:
        session.complete()

    log.info(f"{result.fuzzer} on {result.contract}: "
             f"{result.coverage:.1%} branch coverage, "
             f"{result.iterations} executions, "
             f"{result.transactions} transactions, "
             f"{result.wall_time:.2f}s")
    if result.findings:
        log.info(_findings_table(result.findings))
    else:
        log.info("no findings")
    if args.metrics:
        _write_metrics_file(args.metrics, telemetry.delta or {})
    return 0


def _campaign_contracts(args) -> list:
    """(name, source) pairs / corpus entries for the campaign matrix."""
    if args.files:
        contracts = []
        used: set = set()
        for path in args.files:
            with open(path) as handle:
                source = handle.read()
            base = os.path.splitext(os.path.basename(path))[0]
            # files may share a basename; job names must be unique
            name, suffix = base, 1
            while name in used:
                suffix += 1
                name = f"{base}-{suffix}"
            used.add(name)
            contracts.append((name, source))
        return contracts
    return _sample_corpus(args.dataset, args.count)


def _sample_corpus(dataset: str, count: int) -> list:
    """``count`` contracts from a generated dataset (shared by the
    ``corpus`` and ``campaign`` subcommands so the same flags yield the
    same sample)."""
    from repro.corpus import generate_d1, generate_d2, generate_d3
    if dataset == "d1":
        # keep D1's small/large mix within the requested count (larges
        # are generated after smalls, so slicing would drop them all);
        # any sample of 2+ includes at least one large contract
        n_large = max(1, count // 4) if count > 1 else 0
        return generate_d1(n_small=count - n_large, n_large=n_large)
    if dataset == "d2":
        return generate_d2()[:count]
    return generate_d3(count=count)


def cmd_campaign(args) -> int:
    from repro.orchestrator import (
        backend_for,
        fuzzer_coverage_bars,
        matrix_table,
        resolve_workers,
        run_matrix,
    )

    try:
        oracles = _parse_oracles(args.oracles)
    except ValueError as exc:
        log.error(f"error: --oracles: {exc}")
        return 2
    if args.state_cache_capacity is not None and args.state_cache_capacity < 1:
        log.error("error: --state-cache-capacity must be >= 1")
        return 2
    contracts = _campaign_contracts(args)
    workers = resolve_workers(args.workers)
    if args.backend is None and args.recycle_after:
        backend = "pool"  # a pool-only knob implies the pool backend
    else:
        backend = args.backend or backend_for(workers, args.job_timeout)
    if backend == "inline" and args.job_timeout is not None:
        log.error("error: the inline backend cannot enforce "
                  "--job-timeout; use --backend pool or spawn")
        return 2
    if args.recycle_after is not None and args.recycle_after < 0:
        log.error("error: --recycle-after must be >= 1 "
                  "(0 disables recycling)")
        return 2
    if args.recycle_after and backend != "pool":
        log.error(f"error: --recycle-after only applies to the pool "
                  f"backend (got {backend})")
        return 2
    if args.checkpoint_every is not None and args.checkpoint_every < 1:
        log.error("error: --checkpoint-every must be >= 1")
        return 2
    if args.checkpoint_every is not None and args.results_dir is None:
        log.error("error: --checkpoint-every requires --results-dir "
                  "(checkpoints persist next to the results)")
        return 2
    if backend == "inline":
        workers = 1  # inline runs serially whatever --workers says
    telemetry = bool(args.telemetry or args.metrics)
    # tolerate repeated --fuzzers values (they would collide as job ids)
    args.fuzzers = list(dict.fromkeys(args.fuzzers))
    total = len(contracts) * len(args.fuzzers) * args.trials
    log.info(f"campaign matrix: {len(contracts)} contracts x "
             f"{len(args.fuzzers)} fuzzers x {args.trials} trials = "
             f"{total} jobs on {workers} worker(s), {backend} backend")
    if total <= 0:
        log.error("error: empty campaign matrix: check --count/--trials "
                  "and the input files")
        return 2

    def progress(outcome):
        if outcome.ok:
            detail = (f"{outcome.result.coverage:.1%} coverage, "
                      f"{len(outcome.result.findings)} finding(s)")
        else:
            detail = outcome.error.strip().splitlines()[-1]
            if outcome.heartbeat:
                # the worker's dying heartbeat: where the campaign was
                detail += (f" [last seen: stage="
                           f"{outcome.heartbeat.get('stage') or '-'} "
                           f"execs={outcome.heartbeat.get('executions', 0)}"
                           f"]")
        log.info(f"  [{outcome.status}] {outcome.job.job_id}: {detail} "
                 f"({outcome.elapsed:.2f}s)")

    run = run_matrix(
        contracts, presets=args.fuzzers, trials=args.trials,
        base_seed=args.seed,
        overrides={"iterations": _resolve_iterations(
            args, default_iterations=100)},
        time_budget=args.time_budget, tx_budget=args.tx_budget,
        workers=workers, results_dir=args.results_dir,
        job_timeout=args.job_timeout, progress=progress,
        backend=backend, recycle_after=args.recycle_after,
        checkpoint_every=args.checkpoint_every, oracles=oracles,
        state_cache=args.state_cache,
        state_cache_capacity=args.state_cache_capacity,
        surface_pruning=args.surface_pruning,
        block_fusion=args.block_fusion,
        telemetry=telemetry, store=args.store)

    if run.results_dir is not None:
        backend_note = ((run.stats.store or {}).get("backend")
                        or "json")
        log.info(f"results dir: {run.results_dir} [{backend_note} store] "
                 f"({run.cached} cached, {run.executed} executed)")
    stats = run.stats
    if run.executed and (stats.compile_cache_hits
                         or stats.compile_cache_misses):
        line = (f"compile cache: {stats.compile_cache_hits} hit(s), "
                f"{stats.compile_cache_misses} miss(es)")
        if stats.workers_recycled:
            line += f"; {stats.workers_recycled} worker(s) recycled"
        log.info(line)
    if telemetry and run.executed:
        log.info(f"throughput: {stats.execs_per_sec:.1f} execs/s, "
                 f"{stats.txs_per_sec:.1f} txs/s over {run.executed} "
                 f"fresh job(s)")
    log.info("")

    summaries = run.summaries()
    if summaries:
        headers, rows = matrix_table(summaries)
        log.info(format_table(headers, rows,
                              title="campaign matrix - per-cell aggregate "
                                    "over trials"))
        log.info("")
        log.info(format_percentage_bars(
            fuzzer_coverage_bars(summaries),
            title="mean branch coverage per fuzzer"))
    failures = run.errors + run.timeouts
    if failures:
        log.info("")
        rows = [[o.job.job_id, o.status,
                 o.error.strip().splitlines()[-1][:70]] for o in failures]
        log.info(format_table(["job", "status", "detail"], rows,
                              title="failed jobs (retried on next run)"))
    if args.metrics:
        _write_metrics_file(args.metrics, run.stats.to_wire())
    # nonzero whenever any cell failed, so scripts/CI never mistake a
    # partially-failed campaign for a clean one
    return 0 if summaries and not failures else 1


def _render_top_frame(record: dict) -> None:
    """One frame of the live matrix view."""
    settled = record.get("settled", 0)
    total = record.get("total", 0)
    cached = record.get("cached", 0)
    state = "done" if record.get("done") else "running"
    log.info(f"campaign {state}: {settled}/{total} job(s) settled "
             f"({cached} cached), {record.get('elapsed_s', 0.0):.0f}s "
             f"elapsed")
    in_flight = record.get("in_flight") or {}
    if in_flight:
        rows = []
        for job_id, snap in sorted(in_flight.items()):
            budget = snap.get("budget_remaining") or {}
            cache = snap.get("cache") or {}
            state_hits = cache.get("state_hits")
            if state_hits is None:  # campaign runs without the state cache
                scache = "-"
            else:
                probes = state_hits + cache.get("state_misses", 0)
                scache = (f"{state_hits / probes:.0%}" if probes else "0%")
            rows.append([
                job_id,
                snap.get("worker", "-"),
                snap.get("stage") or "-",
                snap.get("executions", 0),
                f"{snap.get('execs_per_sec', 0.0):.0f}/s",
                f"{snap.get('coverage', 0.0):.1%}",
                snap.get("queue_depth", 0),
                snap.get("findings", 0),
                scache,
                ",".join(f"{k}={v}" for k, v in sorted(budget.items()))
                or "-",
            ])
        log.info(format_table(
            ["job", "worker", "stage", "execs", "rate", "cov", "queue",
             "findings", "scache", "budget left"],
            rows, title="in flight"))
    stats = record.get("stats")
    if stats:
        log.info(f"totals: {stats.get('executions', 0)} executions, "
                 f"{stats.get('transactions', 0)} transactions, "
                 f"{stats.get('execs_per_sec', 0.0):.1f} execs/s, "
                 f"compile cache hit rate "
                 f"{stats.get('cache_hit_rate', 0.0):.0%}")
        store = stats.get("store")
        if store:
            log.info(f"store [{store.get('backend', '?')}]: "
                     f"{store.get('records_saved', 0)} record(s) saved, "
                     f"{store.get('rows_written', 0)} row(s) written in "
                     f"{store.get('batch_flushes', 0)} flush(es), "
                     f"{store.get('queries', 0)} quer(ies) in "
                     f"{store.get('query_ms', 0.0):.1f}ms")


def cmd_top(args) -> int:
    import json
    import time
    from pathlib import Path
    from repro.orchestrator.store import LIVE_TELEMETRY_NAME

    path = Path(args.results_dir)
    if path.is_dir():
        path = path / LIVE_TELEMETRY_NAME
    interval = max(0.1, float(args.interval))
    waiting_logged = False
    while True:
        record = None
        try:
            record = json.loads(path.read_text())
        except OSError:
            if args.once:
                log.error(f"error: no live telemetry at {path} (start the "
                          f"campaign with --telemetry --results-dir, or "
                          f"wait for its first heartbeat)")
                return 2
            if not waiting_logged:
                log.info(f"waiting for {path} ...")
                waiting_logged = True
        except ValueError:
            pass  # replaced mid-read by a concurrent writer: retry
        if record is not None:
            if sys.stdout.isatty() and not args.once:  # pragma: no cover
                sys.stdout.write("\x1b[2J\x1b[H")
            _render_top_frame(record)
            if record.get("done"):
                return 0
        if args.once:
            return 0
        time.sleep(interval)


def _replay_records(paths) -> list:
    """(path, record) pairs from record files and results directories."""
    import json
    from repro.orchestrator.store import (CHECKPOINT_SUFFIX,
                                          TELEMETRY_SUFFIX, DB_NAME,
                                          ResultStore)
    from pathlib import Path

    records = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir() and (path / DB_NAME).exists():
            # a sqlite store: records come from the database, not files
            store = ResultStore(path)
            try:
                canonical = store.canonical_records()
            finally:
                store.close()
            for job_id, text in sorted(canonical.items()):
                record = json.loads(text)
                if "source" not in record:
                    raise ValueError(
                        f"{path}/{job_id}: record predates the witness "
                        f"schema (no embedded source); re-run the "
                        f"campaign to refresh it")
                records.append((path / f"{job_id}.json", record))
            continue
        if path.is_dir():
            files = sorted(p for p in path.glob("*.json")
                           if not p.name.endswith(CHECKPOINT_SUFFIX)
                           and not p.name.endswith(TELEMETRY_SUFFIX))
        else:
            files = [path]
        for file in files:
            try:
                record = json.loads(file.read_text())
            except (OSError, ValueError) as exc:
                raise ValueError(f"{file}: not a readable JSON record "
                                 f"({exc})") from None
            if not isinstance(record, dict) or "result" not in record:
                raise ValueError(f"{file}: not a campaign result record")
            if "source" not in record:
                raise ValueError(
                    f"{file}: record predates the witness schema (no "
                    f"embedded source); re-run the campaign to refresh it")
            records.append((file, record))
    return records


def cmd_replay(args) -> int:
    from repro.core.replay import replay_record

    try:
        records = _replay_records(args.paths)
    except ValueError as exc:
        log.error(f"error: {exc}")
        return 2
    if not records:
        log.error("error: no result records found")
        return 2

    rows = []
    failed = 0
    total = 0
    for path, record in records:
        job_id = record.get("job_id", path.stem)
        outcomes = replay_record(record)
        if not outcomes:
            rows.append([job_id, "-", "-", "-", "no findings"])
            continue
        for outcome in outcomes:
            finding = outcome.finding
            total += 1
            if not outcome.ok:
                failed += 1
            rows.append([job_id, finding.bug_class.value,
                         finding.pc, len(finding.witness),
                         outcome.status])
    log.info(format_table(
        ["job", "class", "pc", "witness txs", "status"], rows,
        title="witness replay"))
    log.info(f"\n{total - failed}/{total} findings re-triggered"
             if total else "\nno findings to replay")
    return 0 if failed == 0 else 1


def cmd_report(args) -> int:
    from pathlib import Path
    from repro.engine.checkpoint import canonical_json
    from repro.orchestrator.store import ResultStore
    from repro.reporting import aggregate_findings, format_findings_report

    root = Path(args.results_dir)
    if not root.is_dir():
        log.error(f"error: {root} is not a results directory")
        return 2
    bug_classes = None
    if args.bug_class is not None:
        try:
            parsed = _parse_oracles(args.bug_class)
        except ValueError as exc:
            log.error(f"error: --bug-class: {exc}")
            return 2
        if parsed == ():
            log.error("error: --bug-class: 'none' selects nothing")
            return 2
        if parsed is not None:
            bug_classes = [bc.value for bc in parsed]
    store = ResultStore(root)
    try:
        rows = store.query_findings(contract=args.contract,
                                    bug_class=bug_classes,
                                    severity=args.severity,
                                    preset=args.preset)
        n_records = len(store.completed_ids())
    finally:
        store.close()
    report = aggregate_findings(rows)
    if args.json:
        log.info(canonical_json(report.to_dict()))
    else:
        log.info(f"{store.name} store at {root}: {n_records} result "
                 f"record(s)")
        log.info("")
        log.info(format_findings_report(report))
    return 0


def cmd_compile(args) -> int:
    artifact = _load(args)
    log.info(f"contract {artifact.name}")
    log.info(f"  runtime: {len(artifact.runtime_code)} bytes, "
             f"{artifact.instruction_count} instructions, "
             f"{len(artifact.branch_info)} branches")
    log.info(f"  init   : {len(artifact.init_code)} bytes")
    log.info("  storage layout:")
    for name, slot in sorted(artifact.layout.slots.items(),
                             key=lambda kv: kv[1]):
        log.info(f"    slot {slot}: {name} "
                 f"({artifact.layout.types[name]})")
    log.info("  ABI:")
    for fn in artifact.abi.functions:
        payable = " payable" if fn.payable else ""
        log.info(f"    {fn.signature}{payable} "
                 f"selector={fn.selector:#010x}")
    return 0


def cmd_disasm(args) -> int:
    artifact = _load(args)
    log.info(format_disassembly(artifact.runtime_code))
    return 0


def cmd_analyze(args) -> int:
    from repro.analysis.surface import surface_for
    from repro.engine.checkpoint import canonical_json

    artifact = _load(args)
    surface = surface_for(artifact.runtime_code)
    if args.json:
        log.info(canonical_json(surface.to_dict()))
        return 0

    rows = [[code,
             "live" if code in surface.live else "dead",
             surface.proofs.get(code, "-")]
            for code in sorted(surface.live + surface.dead)]
    log.info(format_table(
        ["class", "verdict", "proof"],
        rows, title=f"vulnerability surface of {artifact.name} "
                    f"({surface.instruction_count} instructions)"))
    log.info("")

    rows = []
    for sel in sorted(surface.selectors):
        facts = surface.selectors[sel]
        fn = artifact.abi.by_selector(sel)
        rows.append([fn.name if fn is not None else f"{sel:#010x}",
                     ",".join(str(s) for s in facts.reads) or "-",
                     ",".join(str(s) for s in facts.writes) or "-",
                     ",".join(str(s) for s in facts.branch_reads) or "-",
                     ",".join(str(s) for s in facts.self_deps) or "-"])
    if rows:
        log.info(format_table(
            ["function", "read slots", "write slots", "branch reads",
             "RAW self-deps"],
            rows, title="per-selector storage facts (bytecode-level)"))
        log.info("")

    candidates = {code: len(surface.candidate_pcs.get(code, ()))
                  for code in surface.live
                  if surface.candidate_pcs.get(code)}
    log.info(f"dictionary constants: {len(surface.dictionary_constants)}")
    log.info(f"candidate pcs: "
             + (", ".join(f"{c}={n}" for c, n in sorted(candidates.items()))
                or "none"))
    log.info(f"call sites: {len(surface.calls)}")

    if artifact.contract_ast is not None:
        log.info("")
        dataflow = analyze_contract(artifact.contract_ast)
        rows = []
        for fn_name, df in dataflow.functions.items():
            rows.append([fn_name,
                         ",".join(sorted(df.reads)) or "-",
                         ",".join(sorted(df.writes)) or "-",
                         ",".join(sorted(df.branch_reads)) or "-",
                         ",".join(sorted(df.raw_self_deps)) or "-"])
        log.info(format_table(
            ["function", "reads", "writes", "branch reads",
             "RAW self-deps"],
            rows, title=f"source-level data-flow analysis of "
                        f"{artifact.name}"))
        log.info("")
        log.info(f"write→read edges: {dataflow.write_read_edges()}")
        log.info(f"repeat candidates: "
                 f"{sorted(dataflow.repeat_candidates())}")
    return 0


def cmd_scan(args) -> int:
    artifact = _load(args)
    rows = []
    for tool_cls in STATIC_ANALYZERS:
        tool = tool_cls()
        result = tool.analyze(artifact)
        if result.timeout:
            verdict = "TIMEOUT"
        elif result.error:
            verdict = "ERROR"
        else:
            verdict = ",".join(sorted(bc.value for bc in result.findings)) \
                or "clean"
        rows.append([tool.name, verdict, result.paths_explored])
    log.info(format_table(["tool", "verdict", "paths"], rows,
                          title=f"static scan of {artifact.name}"))
    return 0


def cmd_corpus(args) -> int:
    corpus = _sample_corpus(args.dataset, args.count)
    rows = []
    for contract in corpus:
        rows.append([
            contract.name,
            contract.size_class,
            ",".join(sorted(bc.value for bc in contract.expected_bugs))
            or "-",
            contract.instruction_count,
        ])
        if args.show_source:
            log.info(contract.source)
            log.info("")
    log.info(format_table(
        ["name", "size", "annotated bugs", "instructions"],
        rows, title=f"{args.dataset.upper()} sample"))
    return 0


_COMMANDS = {
    "fuzz": cmd_fuzz,
    "campaign": cmd_campaign,
    "report": cmd_report,
    "top": cmd_top,
    "replay": cmd_replay,
    "compile": cmd_compile,
    "disasm": cmd_disasm,
    "analyze": cmd_analyze,
    "scan": cmd_scan,
    "corpus": cmd_corpus,
}


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        log.configure(args.log_level, quiet=args.quiet,
                      verbose=args.verbose)
    except ValueError as exc:
        log.configure()
        log.error(f"error: {exc}")
        return 2
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
