"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``fuzz FILE``      run a fuzzing campaign on a MiniSol source file
``compile FILE``   compile and print bytecode size, ABI, storage layout
``disasm FILE``    disassemble the runtime bytecode
``analyze FILE``   print the sequence-aware data-flow analysis (§IV-A)
``scan FILE``      run the five static-analyzer models
``corpus``         generate and summarize the benchmark corpora
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.dataflow import analyze_contract
from repro.analysis.disassembler import format_disassembly
from repro.baselines import STATIC_ANALYZERS
from repro.compiler import compile_source
from repro.core import (
    Fuzzer,
    confuzzius_config,
    irfuzz_config,
    mufuzz_config,
    sfuzz_config,
    smartian_config,
)
from repro.reporting import format_table

_PRESETS = {
    "mufuzz": mufuzz_config,
    "sfuzz": sfuzz_config,
    "confuzzius": confuzzius_config,
    "irfuzz": irfuzz_config,
    "smartian": smartian_config,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MuFuzz reproduction: smart-contract fuzzing toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    fuzz = sub.add_parser("fuzz", help="fuzz a MiniSol contract")
    fuzz.add_argument("file", help="MiniSol source file")
    fuzz.add_argument("--contract", default=None,
                      help="contract name (default: first in file)")
    fuzz.add_argument("--fuzzer", choices=sorted(_PRESETS), default="mufuzz")
    fuzz.add_argument("--iterations", type=int, default=300)
    fuzz.add_argument("--seed", type=int, default=1)

    for name, help_text in (
            ("compile", "compile and show artifact summary"),
            ("disasm", "disassemble runtime bytecode"),
            ("analyze", "show the data-flow / sequence analysis"),
            ("scan", "run the static-analyzer models")):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("file")
        cmd.add_argument("--contract", default=None)

    corpus = sub.add_parser("corpus", help="generate benchmark corpora")
    corpus.add_argument("--dataset", choices=("d1", "d2", "d3"),
                        default="d2")
    corpus.add_argument("--count", type=int, default=10)
    corpus.add_argument("--show-source", action="store_true")
    return parser


def _load(args) -> object:
    with open(args.file) as handle:
        source = handle.read()
    return compile_source(source, args.contract)


def cmd_fuzz(args) -> int:
    artifact = _load(args)
    config = _PRESETS[args.fuzzer](iterations=args.iterations,
                                   rng_seed=args.seed)
    fuzzer = Fuzzer(artifact, config)
    result = fuzzer.run()
    print(f"{result.fuzzer} on {result.contract}: "
          f"{result.coverage:.1%} branch coverage, "
          f"{result.iterations} executions, "
          f"{result.transactions} transactions, "
          f"{result.wall_time:.2f}s")
    if result.findings:
        rows = [[f.bug_class.value, f.line, f.description]
                for f in result.findings]
        print(format_table(["class", "line", "description"], rows,
                           title="findings"))
    else:
        print("no findings")
    return 0


def cmd_compile(args) -> int:
    artifact = _load(args)
    print(f"contract {artifact.name}")
    print(f"  runtime: {len(artifact.runtime_code)} bytes, "
          f"{artifact.instruction_count} instructions, "
          f"{len(artifact.branch_info)} branches")
    print(f"  init   : {len(artifact.init_code)} bytes")
    print("  storage layout:")
    for name, slot in sorted(artifact.layout.slots.items(),
                             key=lambda kv: kv[1]):
        print(f"    slot {slot}: {name} "
              f"({artifact.layout.types[name]})")
    print("  ABI:")
    for fn in artifact.abi.functions:
        payable = " payable" if fn.payable else ""
        print(f"    {fn.signature}{payable} "
              f"selector={fn.selector:#010x}")
    return 0


def cmd_disasm(args) -> int:
    artifact = _load(args)
    print(format_disassembly(artifact.runtime_code))
    return 0


def cmd_analyze(args) -> int:
    artifact = _load(args)
    dataflow = analyze_contract(artifact.contract_ast)
    rows = []
    for fn_name, df in dataflow.functions.items():
        rows.append([fn_name,
                     ",".join(sorted(df.reads)) or "-",
                     ",".join(sorted(df.writes)) or "-",
                     ",".join(sorted(df.branch_reads)) or "-",
                     ",".join(sorted(df.raw_self_deps)) or "-"])
    print(format_table(
        ["function", "reads", "writes", "branch reads", "RAW self-deps"],
        rows, title=f"data-flow analysis of {artifact.name}"))
    print()
    print("write→read edges:", dataflow.write_read_edges())
    print("repeat candidates:", sorted(dataflow.repeat_candidates()))
    return 0


def cmd_scan(args) -> int:
    artifact = _load(args)
    rows = []
    for tool_cls in STATIC_ANALYZERS:
        tool = tool_cls()
        result = tool.analyze(artifact)
        if result.timeout:
            verdict = "TIMEOUT"
        elif result.error:
            verdict = "ERROR"
        else:
            verdict = ",".join(sorted(bc.value for bc in result.findings)) \
                or "clean"
        rows.append([tool.name, verdict, result.paths_explored])
    print(format_table(["tool", "verdict", "paths"], rows,
                       title=f"static scan of {artifact.name}"))
    return 0


def cmd_corpus(args) -> int:
    from repro.corpus import generate_d1, generate_d2, generate_d3
    if args.dataset == "d1":
        corpus = generate_d1(n_small=args.count, n_large=max(1,
                                                             args.count // 4))
    elif args.dataset == "d2":
        corpus = generate_d2()[:args.count]
    else:
        corpus = generate_d3(count=args.count)
    rows = []
    for contract in corpus:
        rows.append([
            contract.name,
            contract.size_class,
            ",".join(sorted(bc.value for bc in contract.expected_bugs))
            or "-",
            contract.instruction_count,
        ])
        if args.show_source:
            print(contract.source)
            print()
    print(format_table(["name", "size", "annotated bugs", "instructions"],
                       rows, title=f"{args.dataset.upper()} sample"))
    return 0


_COMMANDS = {
    "fuzz": cmd_fuzz,
    "compile": cmd_compile,
    "disasm": cmd_disasm,
    "analyze": cmd_analyze,
    "scan": cmd_scan,
    "corpus": cmd_corpus,
}


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
