"""Setup shim: enables `python setup.py develop` / legacy editable installs
in offline environments that lack the `wheel` package (PEP 660 builds need
it; this shim does not)."""

from setuptools import setup

setup()
