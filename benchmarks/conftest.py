"""Benchmark harness configuration.

Every bench regenerates one paper artefact (table or figure), prints it to
the terminal, and persists it under ``benchmarks/results/``.  Scale is
controlled by ``REPRO_BENCH_SCALE``:

* ``small`` (default) — subsampled corpora and reduced iteration budgets so
  the whole harness completes in a few minutes on a laptop;
* ``full``  — the complete generated corpora and paper-scale (for our
  substrate) budgets.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")


def scaled(small: int, full: int) -> int:
    """Pick a knob value by scale."""
    return full if SCALE == "full" else small


def bench_workers() -> int | None:
    """Worker processes for orchestrator-backed benches.

    ``REPRO_BENCH_WORKERS`` overrides; unset means all CPU cores.  Results
    are identical for any worker count — the orchestrator derives per-job
    seeds deterministically — so this only trades wall-clock for cores.
    """
    value = os.environ.get("REPRO_BENCH_WORKERS")
    return int(value) if value else None


@pytest.fixture
def report(capsys):
    """Print a result table to the real terminal and persist it."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _report(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print()
            print(text)

    return _report


@pytest.fixture
def once(benchmark):
    """Run a campaign exactly once under pytest-benchmark timing."""

    def _once(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return _once
