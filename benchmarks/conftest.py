"""Benchmark harness configuration.

Every bench regenerates one paper artefact (table or figure), prints it to
the terminal, and persists it under ``benchmarks/results/``.  Scale is
controlled by ``REPRO_BENCH_SCALE``:

* ``small`` (default) — subsampled corpora and reduced iteration budgets so
  the whole harness completes in a few minutes on a laptop;
* ``full``  — the complete generated corpora and paper-scale (for our
  substrate) budgets.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: per-run orchestrator timing trajectory, at the repo root so every PR's
#: numbers land in the same artifact
TIMING_PATH = Path(__file__).parent.parent / "BENCH_orchestrator.json"

SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")


def scaled(small: int, full: int) -> int:
    """Pick a knob value by scale."""
    return full if SCALE == "full" else small


def bench_workers() -> int | None:
    """Worker processes for orchestrator-backed benches.

    ``REPRO_BENCH_WORKERS`` overrides; unset means all CPU cores.  Results
    are identical for any worker count — the orchestrator derives per-job
    seeds deterministically — so this only trades wall-clock for cores.
    """
    value = os.environ.get("REPRO_BENCH_WORKERS")
    return int(value) if value else None


def bench_backend() -> str:
    """Execution backend for orchestrator-backed benches.

    ``REPRO_BENCH_BACKEND`` overrides; the default is the pool backend —
    persistent workers whose compile caches amortize per-cell startup.
    Results are byte-identical across backends, so this too only trades
    wall-clock.
    """
    return os.environ.get("REPRO_BENCH_BACKEND") or "pool"


def bench_persistence(label: str) -> dict:
    """Optional ``run_matrix`` persistence kwargs for preemptible benches.

    Set ``REPRO_BENCH_RESULTS_DIR`` to persist per-cell results under
    ``<dir>/<label>/`` — an interrupted bench then resumes instead of
    starting over, and ``REPRO_BENCH_CHECKPOINT_EVERY=N`` additionally
    checkpoints every campaign mid-flight so the resume is mid-campaign,
    not per-cell.  The engine's determinism guarantee keeps resumed bench
    numbers byte-identical to uninterrupted ones.  Unset (the default,
    and in CI) benches stay purely in-memory.
    """
    results_root = os.environ.get("REPRO_BENCH_RESULTS_DIR")
    if not results_root:
        return {}
    kwargs: dict = {"results_dir": Path(results_root) / label}
    every = os.environ.get("REPRO_BENCH_CHECKPOINT_EVERY")
    if every:
        kwargs["checkpoint_every"] = int(every)
    # REPRO_BENCH_STORE picks the result-store backend (json | sqlite);
    # unset defers to run_matrix's own resolution (existing store format,
    # then REPRO_STORE, then json)
    store = os.environ.get("REPRO_BENCH_STORE")
    if store:
        kwargs["store"] = store
    return kwargs


def record_matrix_timing(label: str, run) -> None:
    """Log one :class:`MatrixRun`'s timing into ``BENCH_orchestrator.json``.

    One entry per bench label, overwritten each run — the artifact is a
    perf trajectory for the orchestrator across PRs, not an archive, so
    only the latest numbers per bench are kept.
    """
    try:
        data = json.loads(TIMING_PATH.read_text())
    except (OSError, ValueError):
        data = {}
    # RunStats.to_wire() is the canonical stats serialization: raw
    # counters plus the derived execs/sec, txs/sec, and cache-hit-rate
    stats = run.stats.to_wire()
    stats.pop("telemetry", None)  # registry snapshots are too bulky here
    stats.pop("elapsed", None)    # recorded as wall_clock_s below
    if stats.get("store") is None:  # in-memory run: drop the null field
        stats.pop("store", None)
    data[label] = {
        "cells": len(run.outcomes),
        "executed": run.executed,
        "cached": run.cached,
        "wall_clock_s": round(run.elapsed, 3),
        "jobs_per_sec": (round(run.executed / run.elapsed, 3)
                         if run.elapsed > 0 and run.executed else None),
        "scale": SCALE,
        **stats,
    }
    TIMING_PATH.write_text(json.dumps(data, indent=2, sort_keys=True)
                           + "\n")


@pytest.fixture
def report(capsys):
    """Print a result table to the real terminal and persist it."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _report(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print()
            print(text)

    return _report


@pytest.fixture
def once(benchmark):
    """Run a campaign exactly once under pytest-benchmark timing."""

    def _once(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return _once
