"""Table III: TP / FN / timeout-or-error per bug class for ten tools on D2.

Paper reference totals: MuFuzz 195/20/0; IR-Fuzz 136/54/0; ConFuzzius
110/60/24; Smartian 94/102/0; sFuzz 88/83/0; Mythril 78/43/72; Oyente
68/30/3; Osiris 62/37/2; Slither 51/98/1; Securify 26/21/0.  The shape to
reproduce: MuFuzz detects the most with the fewest misses; fuzzers beat
static analyzers; Mythril loses much of the dataset to timeouts.

The fuzzer rows run on the campaign orchestrator
(:func:`repro.orchestrator.run_matrix`): one matrix per tool with its
Table I oracle-capability set, fanned out across worker processes
(``REPRO_BENCH_WORKERS``; ``REPRO_BENCH_BACKEND`` picks the execution
backend, default pool) with the cohort's pinned RNG seed — results are
identical to the former in-process loop at any parallelism.  Per-run
wall-clock and jobs/sec land in ``BENCH_orchestrator.json``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import (
    bench_backend,
    bench_persistence,
    bench_workers,
    record_matrix_timing,
    scaled,
)
from repro.baselines import STATIC_ANALYZERS
from repro.core import preset_config
from repro.corpus import generate_d2
from repro.oracles.base import ALL_BUG_CLASSES, BugClass
from repro.orchestrator import run_matrix
from repro.reporting import (
    aggregate_fuzzer_detection,
    aggregate_static_detection,
    format_table,
)
from repro.reporting.results import mark_unsupported, totals

#: Table I capability rows for the fuzzer baselines
FUZZER_SUPPORT = {
    "MuFuzz": set(ALL_BUG_CLASSES),
    "IR-Fuzz": {BugClass.BD, BugClass.UD, BugClass.EF, BugClass.IO,
                BugClass.RE, BugClass.SE, BugClass.UE},
    "ConFuzzius": {BugClass.BD, BugClass.UD, BugClass.EF, BugClass.IO,
                   BugClass.RE, BugClass.US, BugClass.UE},
    "Smartian": {BugClass.BD, BugClass.UD, BugClass.EF, BugClass.IO,
                 BugClass.RE, BugClass.US, BugClass.TO, BugClass.UE},
    "sFuzz": {BugClass.BD, BugClass.UD, BugClass.EF, BugClass.IO,
              BugClass.RE, BugClass.UE},
}

FUZZER_PRESET_KEYS = ("mufuzz", "irfuzz", "confuzzius", "smartian",
                      "sfuzz")


@pytest.fixture(scope="module")
def d2():
    corpus = generate_d2()
    if scaled(1, 0):
        # small scale: a stratified subsample that keeps every class
        keep = []
        seen: dict = {}
        for contract in corpus:
            for bug_class in contract.expected_bugs:
                if seen.get(bug_class, 0) < 8:
                    keep.append(contract)
                    for bc in contract.expected_bugs:
                        seen[bc] = seen.get(bc, 0) + 1
                    break
        return keep
    return corpus


def _fuzzer_rows(corpus, iterations: int):
    names = {key: preset_config(key).name for key in FUZZER_PRESET_KEYS}
    supported = {key: FUZZER_SUPPORT[names[key]]
                 for key in FUZZER_PRESET_KEYS}
    # one matrix over all five tools keeps every worker busy to the end
    # (per-job seeds are independent of matrix grouping)
    run = run_matrix(
        corpus, presets=FUZZER_PRESET_KEYS, trials=1,
        overrides={"iterations": iterations, "rng_seed": 11},
        supported=supported, workers=bench_workers(),
        backend=bench_backend(), **bench_persistence("table3_fuzzers"))
    assert not run.errors and not run.timeouts, run.errors + run.timeouts
    record_matrix_timing("table3_fuzzers", run)
    rows = []
    for key in FUZZER_PRESET_KEYS:
        results = {name: trials[0]
                   for name, trials in run.results_for(key).items()}
        cells = aggregate_fuzzer_detection(corpus, results, supported[key])
        rows.append((names[key], cells))
    return rows


def _static_rows(corpus):
    rows = []
    for tool_cls in STATIC_ANALYZERS:
        tool = tool_cls()
        results = {c.name: tool.analyze(c.artifact) for c in corpus}
        cells = aggregate_static_detection(corpus, results)
        mark_unsupported(cells, tool.supported)
        rows.append((tool.name, cells))
    return rows


def test_table3_bug_detection(d2, once, report):
    iterations = scaled(250, 500)
    fuzzer_rows = once(_fuzzer_rows, d2, iterations)
    static_rows = _static_rows(d2)

    headers = ["tool"] + [bc.value for bc in ALL_BUG_CLASSES] + ["total"]
    table_rows = []
    for name, cells in static_rows + fuzzer_rows:
        row = [name] + [str(cells[bc]) for bc in ALL_BUG_CLASSES]
        row.append(str(totals(cells)))
        table_rows.append(row)
    report("table3", format_table(
        headers, table_rows,
        title="Table III — true positives / false negatives / "
              "timeout-or-error per class (D2)"))

    by_name = dict(fuzzer_rows)
    mufuzz_total = totals(by_name["MuFuzz"])
    for name, cells in fuzzer_rows[1:]:
        assert mufuzz_total.tp >= totals(cells).tp, \
            f"MuFuzz should lead {name} in total true positives"
    # Mythril's documented failure mode: a large share of timeouts
    mythril_cells = dict(static_rows)["Mythril"]
    assert totals(mythril_cells).failed > 0
