"""Table IV: the real-world case study — MuFuzz on a D3 sample.

Paper reference: 86 alarms over 100 contracts, 94% true-positive rate
(81 TP / 5 FP; FPs concentrated in BD, RE, UE from imprecise oracles),
average branch coverage 80.71%.  The shape: an IO/BD-heavy alarm profile, a
small FP tail on exactly those classes, and high average coverage.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import scaled
from repro.core import Fuzzer, mufuzz_config
from repro.corpus import generate_d3
from repro.oracles.base import ALL_BUG_CLASSES
from repro.reporting import format_table


@pytest.fixture(scope="module")
def d3():
    return generate_d3(count=scaled(30, 100), seed=500)


def _case_study(corpus, iterations):
    per_class = {bc: {"reported": 0, "tp": 0, "fp": 0}
                 for bc in ALL_BUG_CLASSES}
    coverage = 0.0
    flagged = 0
    for contract in corpus:
        result = Fuzzer(contract.artifact,
                        mufuzz_config(iterations=iterations,
                                      rng_seed=31)).run()
        coverage += result.coverage
        found = result.bug_classes
        if found:
            flagged += 1
        for bug_class in found:
            per_class[bug_class]["reported"] += 1
            # Table IV is manually audited: lookalikes count as FP here.
            if bug_class in contract.expected_bugs:
                per_class[bug_class]["tp"] += 1
            else:
                per_class[bug_class]["fp"] += 1
    return per_class, coverage / len(corpus), flagged


def test_table4_real_world(d3, once, report):
    per_class, avg_coverage, flagged = once(
        _case_study, d3, scaled(300, 500))

    rows = []
    total = {"reported": 0, "tp": 0, "fp": 0}
    for bug_class in ALL_BUG_CLASSES:
        cell = per_class[bug_class]
        rows.append([bug_class.value, cell["reported"], cell["tp"],
                     cell["fp"]])
        for key in total:
            total[key] += cell[key]
    rows.append(["Total", total["reported"], total["tp"], total["fp"]])
    rows.append(["Average Coverage", f"{avg_coverage:.2%}", "", ""])
    rows.append(["Contracts flagged", flagged, "", ""])
    report("table4", format_table(
        ["Bug ID", "Reported", "TP", "FP"], rows,
        title="Table IV — real-world case study (D3 sample, MuFuzz)"))

    if total["reported"]:
        precision = total["tp"] / total["reported"]
        assert precision >= 0.6, f"precision collapsed: {precision:.0%}"
    assert avg_coverage > 0.55
