"""Figures 5 and 6: branch coverage over time and overall, D1 small/large.

Paper reference values — Fig. 6: MuFuzz 90/82, IR-Fuzz 86/76, ConFuzzius
82/70, sFuzz 65/56 (% on small/large); Fig. 5: MuFuzz dominates every
baseline along the whole time axis and ramps fastest early.  The shape to
reproduce is the ordering and the early ramp, not the absolute numbers.

Runs on the campaign orchestrator (:func:`repro.orchestrator.run_matrix`):
the contract × fuzzer matrix fans out across worker processes
(``REPRO_BENCH_WORKERS`` sets the count, ``REPRO_BENCH_BACKEND`` the
execution backend — default: the persistent pool, whose per-worker compile
caches amortize startup) with per-cohort pinned RNG seeds, so results are
identical to the former in-process loop at any parallelism.  Per-run
wall-clock and jobs/sec land in ``BENCH_orchestrator.json`` at the repo
root.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import (
    bench_backend,
    bench_persistence,
    bench_workers,
    record_matrix_timing,
    scaled,
)
from repro.corpus import generate_d1
from repro.orchestrator import average_curves, run_matrix
from repro.reporting import format_percentage_bars, format_table
from repro.reporting.tables import format_curve

#: preset registry keys, strongest first (display names come from results)
PRESET_KEYS = ("mufuzz", "irfuzz", "confuzzius", "sfuzz")


def _cohort_results(run, preset: str) -> list:
    """One result per contract (single-trial matrix), job order."""
    return [trials[0] for trials in run.results_for(preset).values()]


def _run_cohort(contracts, iterations: int, label: str) -> dict:
    """Average final coverage and merged curves per fuzzer."""
    run = run_matrix(
        contracts, presets=PRESET_KEYS, trials=1,
        overrides={"iterations": iterations, "rng_seed": 17},
        workers=bench_workers(), backend=bench_backend(),
        **bench_persistence(label))
    assert not run.errors and not run.timeouts, run.errors + run.timeouts
    record_matrix_timing(label, run)
    out = {}
    for preset in PRESET_KEYS:
        results = _cohort_results(run, preset)
        out[results[0].fuzzer] = {
            "coverage": sum(r.coverage for r in results) / len(results),
            "curve": average_curves([r.curve for r in results]),
        }
    return out


@pytest.fixture(scope="module")
def d1():
    corpus = generate_d1(n_small=scaled(10, 24), n_large=scaled(3, 8),
                         seed=2024)
    small = [c for c in corpus if c.size_class == "small"]
    large = [c for c in corpus if c.size_class == "large"]
    return small, large


def test_fig5a_fig6_small_contracts(d1, once, report):
    small, _ = d1
    cohort = once(_run_cohort, small, scaled(250, 500), "fig5_fig6_small")
    bars = [(name, data["coverage"]) for name, data in cohort.items()]
    curves = {name: data["curve"] for name, data in cohort.items()}
    report("fig6_small", format_percentage_bars(
        bars, title="Fig. 6 (small contracts) — overall branch coverage"))
    report("fig5a_small_curves", format_curve(
        curves, title="Fig. 5a — coverage over time (small contracts), "
                      "x = executed EVM instructions"))
    by_name = dict(bars)
    best = max(cov for _, cov in bars)
    assert by_name["MuFuzz"] >= best - 0.02, \
        f"MuFuzz should lead or tie on small contracts: {bars}"


def test_fig5b_fig6_large_contracts(d1, once, report):
    _, large = d1
    cohort = once(_run_cohort, large, scaled(200, 400), "fig5_fig6_large")
    bars = [(name, data["coverage"]) for name, data in cohort.items()]
    curves = {name: data["curve"] for name, data in cohort.items()}
    report("fig6_large", format_percentage_bars(
        bars, title="Fig. 6 (large contracts) — overall branch coverage"))
    report("fig5b_large_curves", format_curve(
        curves, title="Fig. 5b — coverage over time (large contracts), "
                      "x = executed EVM instructions"))
    by_name = dict(bars)
    best = max(cov for _, cov in bars)
    assert by_name["MuFuzz"] >= best - 0.05, \
        f"MuFuzz fell behind on large contracts: {bars}"


def test_fig6_slippage_summary(d1, report, benchmark):
    """MuFuzz's small→large coverage slippage should stay the smallest
    (the paper reports ~8 points for MuFuzz vs 10–14 for the others)."""
    small, large = d1

    def measure():
        small_run = run_matrix(
            small, presets=PRESET_KEYS, trials=1,
            overrides={"iterations": scaled(100, 300), "rng_seed": 5},
            workers=bench_workers(), backend=bench_backend())
        large_run = run_matrix(
            large, presets=PRESET_KEYS, trials=1,
            overrides={"iterations": scaled(80, 250), "rng_seed": 5},
            workers=bench_workers(), backend=bench_backend())
        for run in (small_run, large_run):
            assert not run.errors and not run.timeouts, \
                run.errors + run.timeouts
        record_matrix_timing("fig6_slippage_small", small_run)
        record_matrix_timing("fig6_slippage_large", large_run)
        rows = []
        for preset in PRESET_KEYS:
            small_res = _cohort_results(small_run, preset)
            large_res = _cohort_results(large_run, preset)
            small_cov = sum(r.coverage for r in small_res) / len(small_res)
            large_cov = sum(r.coverage for r in large_res) / len(large_res)
            rows.append([small_res[0].fuzzer, f"{small_cov:.1%}",
                         f"{large_cov:.1%}",
                         f"{small_cov - large_cov:+.1%}"])
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    report("fig6_slippage", format_table(
        ["fuzzer", "small", "large", "slippage"], rows,
        title="Fig. 6 companion — small→large coverage slippage"))
