"""Figures 5 and 6: branch coverage over time and overall, D1 small/large.

Paper reference values — Fig. 6: MuFuzz 90/82, IR-Fuzz 86/76, ConFuzzius
82/70, sFuzz 65/56 (% on small/large); Fig. 5: MuFuzz dominates every
baseline along the whole time axis and ramps fastest early.  The shape to
reproduce is the ordering and the early ramp, not the absolute numbers.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import scaled
from repro.core import (
    Fuzzer,
    confuzzius_config,
    irfuzz_config,
    mufuzz_config,
    sfuzz_config,
)
from repro.corpus import generate_d1
from repro.reporting import format_percentage_bars, format_table
from repro.reporting.tables import format_curve

FUZZERS = (mufuzz_config, irfuzz_config, confuzzius_config, sfuzz_config)


def _run_cohort(contracts, iterations: int) -> dict:
    """Average final coverage and merged curves per fuzzer."""
    out = {}
    for preset in FUZZERS:
        name = preset().name
        coverages = []
        curves = []
        for contract in contracts:
            result = Fuzzer(contract.artifact,
                            preset(iterations=iterations, rng_seed=17)).run()
            coverages.append(result.coverage)
            curves.append(result.curve)
        out[name] = {
            "coverage": sum(coverages) / len(coverages),
            "curve": _average_curves(curves),
        }
    return out


def _average_curves(curves, points: int = 25) -> list:
    """Resample every curve onto a common step axis and average."""
    max_step = max((curve[-1][0] for curve in curves if curve), default=1)
    xs = [int(max_step * i / points) for i in range(1, points + 1)]
    averaged = []
    for x in xs:
        ys = []
        for curve in curves:
            y = 0.0
            for step, cov in curve:
                if step <= x:
                    y = cov
                else:
                    break
            ys.append(y)
        averaged.append((x, sum(ys) / len(ys)))
    return averaged


@pytest.fixture(scope="module")
def d1():
    corpus = generate_d1(n_small=scaled(10, 24), n_large=scaled(3, 8),
                         seed=2024)
    small = [c for c in corpus if c.size_class == "small"]
    large = [c for c in corpus if c.size_class == "large"]
    return small, large


def test_fig5a_fig6_small_contracts(d1, once, report):
    small, _ = d1
    cohort = once(_run_cohort, small, scaled(250, 500))
    bars = [(name, data["coverage"]) for name, data in cohort.items()]
    curves = {name: data["curve"] for name, data in cohort.items()}
    report("fig6_small", format_percentage_bars(
        bars, title="Fig. 6 (small contracts) — overall branch coverage"))
    report("fig5a_small_curves", format_curve(
        curves, title="Fig. 5a — coverage over time (small contracts), "
                      "x = executed EVM instructions"))
    by_name = dict(bars)
    best = max(cov for _, cov in bars)
    assert by_name["MuFuzz"] >= best - 0.02, \
        f"MuFuzz should lead or tie on small contracts: {bars}"


def test_fig5b_fig6_large_contracts(d1, once, report):
    _, large = d1
    cohort = once(_run_cohort, large, scaled(200, 400))
    bars = [(name, data["coverage"]) for name, data in cohort.items()]
    curves = {name: data["curve"] for name, data in cohort.items()}
    report("fig6_large", format_percentage_bars(
        bars, title="Fig. 6 (large contracts) — overall branch coverage"))
    report("fig5b_large_curves", format_curve(
        curves, title="Fig. 5b — coverage over time (large contracts), "
                      "x = executed EVM instructions"))
    by_name = dict(bars)
    best = max(cov for _, cov in bars)
    assert by_name["MuFuzz"] >= best - 0.05, \
        f"MuFuzz fell behind on large contracts: {bars}"


def test_fig6_slippage_summary(d1, report, benchmark):
    """MuFuzz's small→large coverage slippage should stay the smallest
    (the paper reports ~8 points for MuFuzz vs 10–14 for the others)."""
    small, large = d1

    def measure():
        rows = []
        for preset in FUZZERS:
            name = preset().name
            small_cov = sum(
                Fuzzer(c.artifact, preset(iterations=scaled(100, 300),
                                          rng_seed=5)).run().coverage
                for c in small) / len(small)
            large_cov = sum(
                Fuzzer(c.artifact, preset(iterations=scaled(80, 250),
                                          rng_seed=5)).run().coverage
                for c in large) / len(large)
            rows.append([name, f"{small_cov:.1%}", f"{large_cov:.1%}",
                         f"{small_cov - large_cov:+.1%}"])
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    report("fig6_slippage", format_table(
        ["fuzzer", "small", "large", "slippage"], rows,
        title="Fig. 6 companion — small→large coverage slippage"))
