"""Figure 7: component ablation — coverage and detected bugs relative to the
full system, on D1 small/large samples.

Paper reference: disabling sequence-aware mutation costs the most
(−18% small / −26% large coverage, −14%/−27% bugs); mask and energy each
cost ~9–25% depending on contract size.  The shape to reproduce: every
component contributes, and the sequence-aware mutation contributes most on
coverage.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import scaled
from repro.core import Fuzzer, mufuzz_config
from repro.corpus import generate_d1
from repro.reporting import format_table

VARIANTS = (
    ("full MuFuzz", {}),
    ("w/o sequence-aware mutation", {"sequence_strategy": "random"}),
    ("w/o mask-guided seed mutation", {"use_mask": False}),
    ("w/o dynamic energy adjustment", {"energy_strategy": "uniform"}),
)


@pytest.fixture(scope="module")
def samples():
    corpus = generate_d1(n_small=scaled(10, 40), n_large=scaled(3, 10),
                         seed=77)
    small = [c for c in corpus if c.size_class == "small"]
    large = [c for c in corpus if c.size_class == "large"]
    return small, large


def _run_variant(contracts, overrides, iterations):
    coverage = 0.0
    bugs = 0
    for contract in contracts:
        config = mufuzz_config(iterations=iterations,
                               rng_seed=23).variant(**overrides)
        result = Fuzzer(contract.artifact, config).run()
        coverage += result.coverage
        bugs += len(result.bug_classes & contract.expected_bugs)
    return coverage / len(contracts), bugs


def _ablation(contracts, iterations):
    rows = {}
    for label, overrides in VARIANTS:
        rows[label] = _run_variant(contracts, overrides, iterations)
    return rows


def test_fig7_ablation(samples, once, report):
    small, large = samples
    small_rows = once(_ablation, small, scaled(250, 500))
    large_rows = _ablation(large, scaled(200, 400))

    base_small_cov, base_small_bugs = small_rows["full MuFuzz"]
    base_large_cov, base_large_bugs = large_rows["full MuFuzz"]

    table = []
    for label, _ in VARIANTS:
        s_cov, s_bugs = small_rows[label]
        l_cov, l_bugs = large_rows[label]
        table.append([
            label,
            f"{s_cov:.1%}",
            f"{s_cov - base_small_cov:+.1%}",
            f"{l_cov:.1%}",
            f"{l_cov - base_large_cov:+.1%}",
            f"{s_bugs}/{base_small_bugs or 1}",
            f"{l_bugs}/{base_large_bugs or 1}",
        ])
    report("fig7_ablation", format_table(
        ["variant", "cov small", "Δ", "cov large", "Δ",
         "bugs small", "bugs large"],
        table,
        title="Fig. 7 — ablation of MuFuzz components (D1 samples)"))

    # every ablation must not beat the full system on combined score
    full_score = base_small_cov + base_large_cov
    for label, _ in VARIANTS[1:]:
        s_cov, _ = small_rows[label]
        l_cov, _ = large_rows[label]
        assert s_cov + l_cov <= full_score + 0.10, \
            f"{label} decisively beats the full system"
