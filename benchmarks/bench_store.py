"""Result-store backend A/B: per-file JSON vs WAL-mode SQLite.

The orchestrator persists one canonical record per campaign cell; at real
matrix scale (thousands of contract × preset × trial cells) the per-file
reference layout pays one ``open/write/fsync/rename`` per record on save
and one ``open/read/parse`` per record on every resume scan.  The SQLite
backend batches saves through a buffered single-writer and answers resume
scans from an index without touching record payloads.  This bench measures
both edges on synthetic records (no fuzzing — the store is the only thing
under test):

* ``save``        — persist N records into a fresh store (including the
  final flush), i.e. the write path a campaign run exercises;
* ``resume_scan`` — open an existing N-record store cold and answer
  ``fresh_ids`` for the full matrix, i.e. the first thing a resumed
  ``repro campaign --results-dir`` does.

Both backends produce byte-identical canonical artifacts (the golden
store sweep in ``tests/test_golden_determinism.py`` pins that), so the
arms do the same logical work and the series isolates pure wall-clock.

Estimator (same hostile-conditions design as ``bench_evm_throughput``):
each round runs the two arms back to back, the arm order alternates every
round so monotonic machine drift penalizes each arm equally often, and the
reported speedup is the **median of the paired json/sqlite time ratios**.

Results land in ``BENCH_orchestrator.json`` under ``store_backend``.  Run
directly (``python benchmarks/bench_store.py [--smoke]``) or via pytest;
``REPRO_BENCH_STORE_SMOKE=1`` (or ``--smoke``) shrinks the workload for CI
smoke runs.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.core.campaign import CampaignResult
from repro.oracles.base import BugClass, Finding
from repro.orchestrator import CampaignJob
from repro.orchestrator.jobs import JobOutcome
from repro.orchestrator.store import ResultStore

TIMING_PATH = Path(__file__).parent.parent / "BENCH_orchestrator.json"

#: matrix size — the acceptance criteria are stated at 1k records
N_RECORDS = 1000
N_RECORDS_SMOKE = 150
#: interleaved A/B rounds (each round = one full save per arm)
SAVE_ROUNDS = 3
#: interleaved A/B rounds for the resume scan (cheap: more rounds)
SCAN_ROUNDS = 5
#: acceptance floors (full scale): sqlite must beat the per-file layout
#: by at least this much, median of paired ratios
SAVE_TARGET = 2.0
SCAN_TARGET = 5.0

_SOURCE = "contract C { function f() public { } }"


def _smoke() -> bool:
    return (os.environ.get("REPRO_BENCH_STORE_SMOKE") == "1"
            or "--smoke" in sys.argv)


def _synthetic_outcomes(count: int) -> list:
    """Deterministic matrix-shaped outcomes: unique job ids, realistic
    payload sizes, findings on a quarter of the cells so the sqlite
    findings projection is exercised too."""
    classes = sorted(BugClass, key=lambda bc: bc.value)
    outcomes = []
    for i in range(count):
        job = CampaignJob(name=f"C{i:04d}", source=_SOURCE,
                          preset="mufuzz", trial=0,
                          overrides={"iterations": 5})
        findings = []
        if i % 4 == 0:
            bug_class = classes[i % len(classes)]
            findings.append(Finding(
                bug_class=bug_class, contract=job.name, pc=40 + i % 60,
                line=3, description=f"{bug_class.value} at synthetic site",
                severity=("high", "medium", "low")[i % 3],
                confidence=0.75,
                witness=({"fn": "f", "args": [], "value": 0,
                          "sender": 1},)))
        result = CampaignResult(
            fuzzer="MuFuzz", contract=job.name, coverage=0.5 + (i % 40)
            / 100.0, iterations=200, total_steps=9000 + i,
            wall_time=1.0, findings=findings,
            curve=[(k * 50, round(k * 0.1, 2)) for k in range(1, 9)],
            seeds_in_queue=6, transactions=600)
        outcomes.append(JobOutcome(job=job, status="ok", result=result))
    return outcomes


def _save_arm(root: Path, backend: str, outcomes) -> float:
    """Persist every outcome into a fresh store; returns wall-clock
    seconds including the final flush (what a campaign run pays)."""
    store = ResultStore(root, backend=backend)
    start = time.perf_counter()
    for outcome in outcomes:
        store.save(outcome)
    store.flush()
    elapsed = time.perf_counter() - start
    store.close()
    return elapsed


def _scan_arm(root: Path, jobs) -> float:
    """Cold-open an existing store and answer the full resume scan."""
    store = ResultStore(root)
    start = time.perf_counter()
    fresh = store.fresh_ids(jobs)
    elapsed = time.perf_counter() - start
    store.close()
    assert len(fresh) == len(jobs), "resume scan lost records"
    return elapsed


def _median(values) -> float:
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


def run_store_bench(smoke: bool | None = None) -> dict:
    """Run both series and persist the entry in BENCH_orchestrator.json."""
    if smoke is None:
        smoke = _smoke()
    count = N_RECORDS_SMOKE if smoke else N_RECORDS
    outcomes = _synthetic_outcomes(count)
    jobs = [o.job for o in outcomes]

    with tempfile.TemporaryDirectory(prefix="bench_store_") as tmp:
        tmp = Path(tmp)
        save_ratios = []
        save_total = {"json": 0.0, "sqlite": 0.0}
        for round_no in range(SAVE_ROUNDS):
            arms = (("json", "sqlite") if round_no % 2 == 0
                    else ("sqlite", "json"))
            elapsed = {}
            for arm in arms:
                elapsed[arm] = _save_arm(tmp / f"save-{round_no}-{arm}",
                                         arm, outcomes)
                save_total[arm] += elapsed[arm]
            save_ratios.append(elapsed["json"] / elapsed["sqlite"])

        # the scan arms reuse one populated store per backend (round 0's):
        # resume reads an existing artifact, it never rewrites it
        scan_roots = {arm: tmp / f"save-0-{arm}"
                      for arm in ("json", "sqlite")}
        scan_ratios = []
        scan_times = {"json": [], "sqlite": []}
        for round_no in range(SCAN_ROUNDS):
            arms = (("json", "sqlite") if round_no % 2 == 0
                    else ("sqlite", "json"))
            elapsed = {}
            for arm in arms:
                elapsed[arm] = _scan_arm(scan_roots[arm], jobs)
                scan_times[arm].append(elapsed[arm])
            scan_ratios.append(elapsed["json"] / elapsed["sqlite"])

    entry = {
        "records": count,
        "save": {
            "json_records_per_sec": round(
                count * SAVE_ROUNDS / save_total["json"]),
            "sqlite_records_per_sec": round(
                count * SAVE_ROUNDS / save_total["sqlite"]),
            "speedup": round(_median(save_ratios), 2),
            "target": SAVE_TARGET,
            "rounds": SAVE_ROUNDS,
        },
        "resume_scan": {
            "json_ms": round(_median(scan_times["json"]) * 1000, 2),
            "sqlite_ms": round(_median(scan_times["sqlite"]) * 1000, 2),
            "speedup": round(_median(scan_ratios), 2),
            "target": SCAN_TARGET,
            "rounds": SCAN_ROUNDS,
        },
        "methodology": (
            "paired interleaved A/B on identical synthetic records; arms "
            "run back to back per round with alternating order; speedup "
            "is the median of paired json/sqlite time ratios; save times "
            "include the final flush, scans cold-open the store; job "
            "fingerprints are memoized on the shared job objects, so "
            "warm rounds isolate store-side scan cost"),
        "smoke": smoke,
    }

    try:
        data = json.loads(TIMING_PATH.read_text())
    except (OSError, ValueError):
        data = {}
    data["store_backend"] = entry
    TIMING_PATH.write_text(json.dumps(data, indent=2, sort_keys=True)
                           + "\n")
    return entry


def test_store_backend(report):
    """Pytest entry point: run the bench and report both speedups."""
    entry = run_store_bench()
    save, scan = entry["save"], entry["resume_scan"]
    lines = [
        f"result-store backend A/B ({entry['records']} records)",
        f"  save        {save['json_records_per_sec']:>8} rec/s json, "
        f"{save['sqlite_records_per_sec']:>8} rec/s sqlite  "
        f"→ {save['speedup']}x (target {save['target']}x)",
        f"  resume scan {scan['json_ms']:>8.2f} ms json, "
        f"{scan['sqlite_ms']:>8.2f} ms sqlite  "
        f"→ {scan['speedup']}x (target {scan['target']}x)",
    ]
    report("store_backend", "\n".join(lines))
    if entry["smoke"]:
        # smoke workloads are too small for the full-scale floors; just
        # require that sqlite never loses the pairing
        assert save["speedup"] >= 1.0 and scan["speedup"] >= 1.0, entry
    else:
        assert save["speedup"] >= SAVE_TARGET, (
            f"sqlite save throughput {save['speedup']}x is below the "
            f"{SAVE_TARGET}x acceptance floor")
        assert scan["speedup"] >= SCAN_TARGET, (
            f"sqlite resume scan {scan['speedup']}x is below the "
            f"{SCAN_TARGET}x acceptance floor")


if __name__ == "__main__":
    print(json.dumps(run_store_bench(), indent=2))
