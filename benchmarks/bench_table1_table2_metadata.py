"""Tables I and II: tool capability matrix and dataset summary.

These are descriptive tables; the bench renders them from the *implemented*
capability sets and generated corpora so they stay truthful to this
reproduction rather than hand-copied from the paper.
"""

from __future__ import annotations

from benchmarks.conftest import scaled
from repro.baselines import STATIC_ANALYZERS
from repro.corpus import generate_d1, generate_d2, generate_d3
from repro.corpus.d2 import class_totals
from repro.oracles.base import ALL_BUG_CLASSES
from repro.reporting import format_table

from benchmarks.bench_table3_bug_detection import FUZZER_SUPPORT


def test_table1_capability_matrix(report, benchmark):
    def build():
        rows = []
        for name, support in FUZZER_SUPPORT.items():
            rows.append([name, "Fuzzer"] + [
                "Y" if bc in support else "-" for bc in ALL_BUG_CLASSES])
        for tool_cls in STATIC_ANALYZERS:
            rows.append([tool_cls.name, "Static"] + [
                "Y" if bc in tool_cls.supported else "-"
                for bc in ALL_BUG_CLASSES])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    report("table1", format_table(
        ["tool", "type"] + [bc.value for bc in ALL_BUG_CLASSES], rows,
        title="Table I — bug classes supported by each implemented tool"))
    assert len(rows) == len(FUZZER_SUPPORT) + len(STATIC_ANALYZERS)


def test_table2_dataset_summary(report, benchmark):
    def build():
        d1 = generate_d1(n_small=scaled(8, 24), n_large=scaled(2, 8))
        d2 = generate_d2()
        d3 = generate_d3(count=scaled(10, 100))
        small = sum(c.size_class == "small" for c in d1)
        large = len(d1) - small
        annotated = sum(class_totals(d2).values())
        return [
            ["D1", "coverage (RQ1, RQ3)",
             f"{small} small + {large} large (seeded generator; paper: "
             "17,803 + 3,344)"],
            ["D2", "bug finding (RQ2)",
             f"{len(d2)} vulnerable contracts, {annotated} annotated bugs "
             "(paper: 155 / 217)"],
            ["D3", "real-world study (RQ4)",
             f"{len(d3)} large contracts (paper: 500, sampled 100)"],
        ]

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    report("table2", format_table(
        ["#", "used for", "contents"], rows,
        title="Table II — benchmark datasets of this reproduction"))
    assert rows[1][2].startswith("155")
