"""§III motivating example: the Crowdsale contract.

Paper claims: sFuzz / ILF / Smartian / ConFuzzius never reach the bug branch
(withdraw's ``phase == 1``) and stall at ~50% coverage; MuFuzz exposes it
"within a matter of seconds" and reaches 100% of the contract's meaningful
branches via the sequence [invest → refund → invest → withdraw].
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import scaled
from repro.core import (
    Fuzzer,
    confuzzius_config,
    mufuzz_config,
    sfuzz_config,
    smartian_config,
)
from repro.reporting import format_table
from tests.conftest import CROWDSALE_SOURCE


def _bug_branch_covered(fuzzer: Fuzzer) -> bool:
    withdraw_ifs = [pc for pc, info in fuzzer.artifact.branch_info.items()
                    if info.function == "withdraw" and info.kind == "if"]
    return all((pc, True) in fuzzer.coverage.covered for pc in withdraw_ifs)


def _run_all(iterations):
    rows = []
    for preset in (mufuzz_config, confuzzius_config, smartian_config,
                   sfuzz_config):
        fuzzer = Fuzzer(CROWDSALE_SOURCE,
                        preset(iterations=iterations, rng_seed=7))
        result = fuzzer.run()
        rows.append([
            result.fuzzer,
            "YES" if _bug_branch_covered(fuzzer) else "no",
            f"{result.coverage:.1%}",
            f"{result.wall_time:.2f}s",
            " -> ".join(result.example_sequence[:5]),
        ])
    return rows


def test_motivating_example(once, report):
    rows = once(_run_all, scaled(80, 200))
    report("motivating_example", format_table(
        ["fuzzer", "bug branch hit", "coverage", "wall time",
         "example sequence"],
        rows,
        title="§III motivating example — Crowdsale (Fig. 1)"))
    by_name = {row[0]: row for row in rows}
    assert by_name["MuFuzz"][1] == "YES"
    assert float(by_name["MuFuzz"][3].rstrip("s")) < 10.0, \
        "MuFuzz should expose the bug within seconds"


def test_mufuzz_generates_paper_sequence(report, benchmark):
    """MuFuzz's sequence mutation must produce the invest-twice shape."""
    fuzzer = Fuzzer(CROWDSALE_SOURCE, mufuzz_config(iterations=30,
                                                    rng_seed=1))
    sequence = benchmark.pedantic(fuzzer.seqgen.base_sequence,
                                  rounds=1, iterations=1)
    assert sequence.count("invest") >= 2
    assert "withdraw" in sequence
    report("paper_sequence", "MuFuzz base sequence for Crowdsale:\n  " +
           " -> ".join(sequence))
