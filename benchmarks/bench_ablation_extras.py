"""Extra ablations beyond the paper's Fig. 7 (DESIGN.md commitments):

* mask probe budget sweep — how much campaign budget Algorithm 2 may spend;
* RAW-repetition on/off inside the dataflow strategy (isolating §IV-A's
  repetition rule from mere dependency ordering);
* energy weight scheme comparison (uniform / revisit / dynamic).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import scaled
from repro.core import Fuzzer, mufuzz_config
from repro.core.config import (
    ENERGY_DYNAMIC,
    ENERGY_REVISIT,
    ENERGY_UNIFORM,
    SEQ_DATAFLOW,
    SEQ_DATAFLOW_REPEAT,
)
from repro.corpus import generate_d1
from repro.reporting import format_table


@pytest.fixture(scope="module")
def sample():
    corpus = generate_d1(n_small=scaled(8, 24), n_large=0, seed=99)
    return corpus


def _avg_cov(contracts, config_factory):
    total = 0.0
    for contract in contracts:
        total += Fuzzer(contract.artifact, config_factory()).run().coverage
    return total / len(contracts)


def test_mask_budget_sweep(sample, once, report):
    iterations = scaled(100, 250)

    def sweep():
        rows = []
        for fraction in (0.0, 0.15, 0.25, 0.5):
            cov = _avg_cov(sample, lambda: mufuzz_config(
                iterations=iterations, rng_seed=41,
                mask_budget_fraction=fraction,
                use_mask=fraction > 0))
            rows.append([f"{fraction:.0%}", f"{cov:.1%}"])
        return rows

    rows = once(sweep)
    report("ablation_mask_budget", format_table(
        ["mask probe budget", "avg coverage"], rows,
        title="Extra ablation — Algorithm 2 probe-budget sweep (D1 small)"))


def test_repetition_rule_isolated(sample, once, report):
    iterations = scaled(100, 250)

    def compare():
        with_repeat = _avg_cov(sample, lambda: mufuzz_config(
            iterations=iterations, rng_seed=42,
            sequence_strategy=SEQ_DATAFLOW_REPEAT))
        without = _avg_cov(sample, lambda: mufuzz_config(
            iterations=iterations, rng_seed=42,
            sequence_strategy=SEQ_DATAFLOW))
        return with_repeat, without

    with_repeat, without = once(compare)
    report("ablation_repetition", format_table(
        ["strategy", "avg coverage"],
        [["dataflow + RAW repetition", f"{with_repeat:.1%}"],
         ["dataflow ordering only", f"{without:.1%}"]],
        title="Extra ablation — §IV-A repetition rule isolated"))
    assert with_repeat >= without - 0.05


def test_state_cache_speedup(sample, once, report):
    """§VI future-work extension: the prefix-snapshot tree fast-forwards
    memoized prefixes instead of re-executing them.  It is a pure
    performance layer, so the campaign *accounting* — recorded steps,
    coverage, findings — must come out identical with it on or off; the
    work it actually removed shows up in the cache's own counters (the
    ``state_cache`` series in BENCH_evm.json measures the wall-clock
    side)."""
    iterations = scaled(120, 300)

    def compare():
        rows = []
        for use_cache in (False, True):
            steps = 0
            cov = 0.0
            hits = saved = 0
            for contract in sample:
                fuzzer = Fuzzer(contract.artifact, mufuzz_config(
                    iterations=iterations, rng_seed=44,
                    use_state_cache=use_cache))
                result = fuzzer.run()
                steps += result.total_steps
                cov += result.coverage
                if fuzzer.state_cache is not None:
                    stats = fuzzer.state_cache.stats()
                    hits += stats["hits"]
                    saved += stats["steps_saved"]
            rows.append([("with cache" if use_cache else "no cache"),
                         steps, f"{cov / len(sample):.1%}", hits, saved])
        return rows

    rows = once(compare)
    report("ablation_state_cache", format_table(
        ["mode", "recorded steps", "avg coverage", "cache hits",
         "steps fast-forwarded"], rows,
        title="Extra ablation — §VI prefix-snapshot tree"))
    no_cache, cached = rows
    assert cached[1] == no_cache[1], \
        "the state cache must not change recorded campaign steps"
    assert cached[2] == no_cache[2], \
        "the state cache must not change coverage"
    assert cached[3] > 0, "campaigns never hit the state cache"
    assert cached[4] > 0, "cache hits fast-forwarded no steps"


def test_energy_scheme_comparison(sample, once, report):
    iterations = scaled(100, 250)

    def compare():
        rows = []
        for scheme in (ENERGY_DYNAMIC, ENERGY_REVISIT, ENERGY_UNIFORM):
            cov = _avg_cov(sample, lambda: mufuzz_config(
                iterations=iterations, rng_seed=43,
                energy_strategy=scheme))
            rows.append([scheme, f"{cov:.1%}"])
        return rows

    rows = once(compare)
    report("ablation_energy", format_table(
        ["energy scheme", "avg coverage"], rows,
        title="Extra ablation — energy allocation schemes (D1 small)"))
