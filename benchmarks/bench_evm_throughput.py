"""EVM interpreter throughput microbench.

The orchestrator benches (``BENCH_orchestrator.json``) measure jobs/sec at
the campaign-matrix level; this bench measures the layer below them — raw
interpreter steps/sec on the d2 corpus — so regressions in the dispatch
table, the shared code-analysis cache, or the journal-based state reset are
visible even when job-level numbers are dominated by compile/setup cost.

Two workloads, both fully deterministic:

* ``replay``  — one fixed transaction sequence per contract executed over
  and over against a reset state (the ``Fuzzer._execute`` hot path with the
  fuzzing logic factored out: interpreter + state-reset cost only);
* ``campaign`` — a short full MuFuzz campaign per contract (interpreter
  plus mutation/oracle/feedback overhead, i.e. the real per-iteration mix).

Results land in ``BENCH_evm.json`` at the repo root under a variant key
(``REPRO_BENCH_EVM_VARIANT``, default ``current``).  When both a ``seed``
entry and a ``current`` entry exist the file also records the speedup, so
the interpreter's perf trajectory is tracked across PRs alongside the
orchestrator's.

Run directly (``python benchmarks/bench_evm_throughput.py [--smoke]``) or
via pytest; ``REPRO_BENCH_EVM_SMOKE=1`` (or ``--smoke``) shrinks the
workload for CI smoke runs.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

from repro.core.config import mufuzz_config
from repro.core.fuzzer import Fuzzer
from repro.corpus import generate_d2, generate_d3
from repro.telemetry import metrics as telemetry_metrics

EVM_BENCH_PATH = Path(__file__).parent.parent / "BENCH_evm.json"

#: contracts drawn from the deterministic d2 corpus
N_CONTRACTS = 6
N_CONTRACTS_SMOKE = 2
#: replay iterations (sequence re-executions) per contract
REPLAY_ITERS = 120
REPLAY_ITERS_SMOKE = 25
#: campaign iterations per contract
CAMPAIGN_ITERS = 120
CAMPAIGN_ITERS_SMOKE = 25
#: interleaved A/B rounds for the telemetry-overhead series (best-of)
OVERHEAD_ROUNDS = 3
#: the observability budget: enabled telemetry may cost at most this
#: fraction of replay throughput (ISSUE acceptance criterion)
OVERHEAD_BUDGET = 0.03
#: campaign iterations for the state-cache A/B series — longer than the
#: throughput workloads so prefixes recur enough for the snapshot tree
#: to reach its steady-state hit rate
STATE_CACHE_ITERS = 400
STATE_CACHE_ITERS_SMOKE = 60
#: interleaved A/B rounds per contract for the state-cache series
STATE_CACHE_ROUNDS = 2
#: d3 contracts sampled for the series' second corpus
STATE_CACHE_D3 = 3
#: campaign iterations for the surface-pruning A/B series
SURFACE_ITERS = 300
SURFACE_ITERS_SMOKE = 50
#: interleaved A/B rounds per contract for the surface-pruning series
SURFACE_ROUNDS = 2
#: campaign iterations for the block-fusion A/B series
BLOCK_FUSION_ITERS = 300
BLOCK_FUSION_ITERS_SMOKE = 50
#: interleaved A/B rounds per contract for the block-fusion series
BLOCK_FUSION_ROUNDS = 2
#: d3 contracts sampled for the block-fusion series' second corpus
BLOCK_FUSION_D3 = 3
#: acceptance floor: fused campaigns must be at least this much faster
#: than the table loop on the d2 corpus (median of paired ratios)
BLOCK_FUSION_TARGET_D2 = 1.25


def _smoke() -> bool:
    return (os.environ.get("REPRO_BENCH_EVM_SMOKE") == "1"
            or "--smoke" in sys.argv)


def _bench_contracts(count: int) -> list:
    corpus = generate_d2()
    # Spread across the corpus so several bug templates / gate depths are
    # represented, deterministically.
    stride = max(1, len(corpus) // count)
    return [corpus[i * stride] for i in range(count)]


def _replay_throughput(contracts, iters: int) -> dict:
    """Fixed-sequence replay: interpreter + per-iteration state reset.

    Runs with the state cache pinned off (as do the campaign and
    telemetry series): these series track the *interpreter's* perf
    trajectory against the seed entry, and with the cache on a re-executed
    fixed sequence degenerates to a 100%-hit fast-forward.  The cache gets
    its own A/B series (``state_cache``) below.
    """
    steps = 0
    elapsed = 0.0
    executions = 0
    for contract in contracts:
        fuzzer = Fuzzer(contract.artifact,
                        mufuzz_config(iterations=iters, rng_seed=7,
                                      use_state_cache=False))
        seed = fuzzer._fresh_seed()
        start = time.perf_counter()
        for _ in range(iters):
            trace = fuzzer._execute(seed)
            steps += trace.steps
        elapsed += time.perf_counter() - start
        executions += iters
    return {"steps": steps, "wall_clock_s": round(elapsed, 3),
            "executions": executions,
            "steps_per_sec": round(steps / elapsed) if elapsed else None}


def _campaign_throughput(contracts, iters: int) -> dict:
    """Short full campaigns: the realistic per-iteration instruction mix."""
    steps = 0
    elapsed = 0.0
    executions = 0
    for contract in contracts:
        fuzzer = Fuzzer(contract.artifact,
                        mufuzz_config(iterations=iters, rng_seed=7,
                                      use_state_cache=False))
        start = time.perf_counter()
        result = fuzzer.run()
        elapsed += time.perf_counter() - start
        steps += result.total_steps
        executions += result.iterations
    return {"steps": steps, "wall_clock_s": round(elapsed, 3),
            "executions": executions,
            "steps_per_sec": round(steps / elapsed) if elapsed else None}


def _telemetry_overhead(contracts, iters: int) -> dict:
    """A/B series: replay throughput with telemetry off vs on.

    The effect under measurement (a few percent at most) is far below the
    noise floor of a shared CI machine, so the estimator is built for
    hostile conditions: each round times the two arms *back to back* on
    the same warmed fuzzer and records the on/off time ratio of that pair,
    the arm order alternates every round (so monotonic frequency / thermal
    drift penalizes each arm equally often), and the reported overhead is
    the **median of the paired ratios** across every (contract, round)
    pair — robust to the asymmetric slow-tail that wrecks mean- and
    best-of estimators.
    """
    was_enabled = telemetry_metrics.enabled()
    ratios = []
    total = {"off": 0.0, "on": 0.0}
    steps = {"off": 0, "on": 0}
    # keep at least ~12 paired samples even on the shrunk smoke workload
    rounds = max(OVERHEAD_ROUNDS, 12 // max(1, len(contracts)))
    try:
        for contract in contracts:
            fuzzer = Fuzzer(contract.artifact,
                            mufuzz_config(iterations=iters, rng_seed=7,
                                          use_state_cache=False))
            seed = fuzzer._fresh_seed()
            fuzzer._execute(seed)  # warm the analysis/compile caches
            for round_no in range(rounds):
                arms = (("off", "on") if round_no % 2 == 0
                        else ("on", "off"))
                elapsed = {}
                for arm in arms:
                    if arm == "on":
                        telemetry_metrics.enable()
                    else:
                        telemetry_metrics.disable()
                    start = time.perf_counter()
                    round_steps = 0
                    for _ in range(iters):
                        round_steps += fuzzer._execute(seed).steps
                    elapsed[arm] = time.perf_counter() - start
                    total[arm] += elapsed[arm]
                    steps[arm] += round_steps
                ratios.append(elapsed["on"] / elapsed["off"])
    finally:
        if was_enabled:
            telemetry_metrics.enable()
        else:
            telemetry_metrics.disable()
    ratios.sort()
    median = ratios[len(ratios) // 2] if ratios else 1.0
    return {
        "disabled_steps_per_sec": (round(steps["off"] / total["off"])
                                   if total["off"] else None),
        "enabled_steps_per_sec": (round(steps["on"] / total["on"])
                                  if total["on"] else None),
        "overhead": round(median - 1.0, 4),
        "budget": OVERHEAD_BUDGET,
        "rounds": rounds,
        "pairs": len(ratios),
    }


def _state_cache_series(contracts, iters: int) -> dict:
    """A/B series: identical campaigns with the prefix-snapshot state
    cache on vs off.

    Campaign results are byte-identical either way (the golden-fixture
    guard pins that), so both arms do the same logical work and the
    series isolates pure wall-clock savings.  Same hostile-conditions
    estimator as the telemetry series: each round times the two arms back
    to back, the arm order alternates every round, and the reported
    speedup is the **median of the paired off/on time ratios** across
    every (contract, round) pair.
    """
    ratios = []
    total = {"off": 0.0, "on": 0.0}
    steps = hits = misses = saved = 0
    for contract in contracts:
        # warm the compile/analysis caches outside the timed region
        Fuzzer(contract.artifact,
               mufuzz_config(iterations=2, rng_seed=7)).run()
        for round_no in range(STATE_CACHE_ROUNDS):
            arms = ("off", "on") if round_no % 2 == 0 else ("on", "off")
            elapsed = {}
            for arm in arms:
                fuzzer = Fuzzer(contract.artifact, mufuzz_config(
                    iterations=iters, rng_seed=7,
                    use_state_cache=arm == "on"))
                start = time.perf_counter()
                result = fuzzer.run()
                elapsed[arm] = time.perf_counter() - start
                total[arm] += elapsed[arm]
                if arm == "on":
                    steps += result.total_steps
                    stats = fuzzer.state_cache.stats()
                    hits += stats["hits"]
                    misses += stats["misses"]
                    saved += stats["steps_saved"]
            ratios.append(elapsed["off"] / elapsed["on"])
    ratios.sort()
    probes = hits + misses
    return {
        "speedup": round(ratios[len(ratios) // 2], 3) if ratios else None,
        "hit_rate": round(hits / probes, 4) if probes else 0.0,
        "steps_saved": saved,
        "cached_steps_per_sec": (round(steps / total["on"])
                                 if total["on"] else None),
        "uncached_steps_per_sec": (round(steps / total["off"])
                                   if total["off"] else None),
        "iterations": iters,
        "rounds": STATE_CACHE_ROUNDS,
        "pairs": len(ratios),
    }


def _surface_pruning_series(contracts, iters: int) -> dict:
    """A/B series: identical campaigns with surface-proof oracle pruning
    on vs off, over contracts the surface actually prunes something for.

    Pruned oracles are provably dead (whole-code opcode absence), so both
    arms produce byte-identical results (the golden-fixture guard pins
    that) and the series isolates the wall-clock cost of carrying dead
    oracles: their event subscriptions (which force the machine to
    materialize trace events) and their per-receipt dispatch.  Same
    hostile-conditions estimator as the other A/B series: back-to-back
    arms per round, alternating order, median of the paired off/on time
    ratios.
    """
    from repro.analysis.surface import surface_for

    pruned_contracts = [
        c for c in contracts
        if surface_for(c.artifact.runtime_code).dead]
    ratios = []
    total = {"off": 0.0, "on": 0.0}
    pruned = 0
    for contract in pruned_contracts:
        # warm the compile/analysis/surface caches outside the timed region
        Fuzzer(contract.artifact,
               mufuzz_config(iterations=2, rng_seed=7)).run()
        for round_no in range(SURFACE_ROUNDS):
            arms = ("off", "on") if round_no % 2 == 0 else ("on", "off")
            elapsed = {}
            for arm in arms:
                fuzzer = Fuzzer(contract.artifact, mufuzz_config(
                    iterations=iters, rng_seed=7,
                    use_surface_pruning=arm == "on"))
                start = time.perf_counter()
                fuzzer.run()
                elapsed[arm] = time.perf_counter() - start
                total[arm] += elapsed[arm]
                if arm == "on" and round_no == 0:
                    pruned += len(fuzzer.bus.pruned)
            ratios.append(elapsed["off"] / elapsed["on"])
    ratios.sort()
    return {
        "speedup": round(ratios[len(ratios) // 2], 3) if ratios else None,
        "oracles_pruned": pruned,
        "contracts_with_dead_classes": len(pruned_contracts),
        "contracts_total": len(contracts),
        "iterations": iters,
        "rounds": SURFACE_ROUNDS,
        "pairs": len(ratios),
    }


def _block_fusion_series(contracts, iters: int) -> dict:
    """A/B series: identical campaigns with block-fused execution on vs
    off (the table loop).

    Campaign results are byte-identical either way (the golden-fixture
    guard pins that), so the series isolates the dispatch overhead the
    fused tier amortizes away: per-opcode loop iterations, gas/step
    checks, and stack traffic that constant folding elides.  Same
    hostile-conditions estimator as the other A/B series: back-to-back
    arms per round, alternating order, median of the paired off/on time
    ratios.

    Both arms run with the prefix-snapshot state cache *off* (like the
    replay/campaign series): the cache skips whole transaction replays,
    which is orthogonal to how each executed step is dispatched, and
    leaving it on would dilute the interpreter share of wall time until
    the series mostly measures scheduling noise.  This series tracks the
    *interpreter's* perf trajectory.
    """
    from repro.evm import fusion

    ratios = []
    total = {"off": 0.0, "on": 0.0}
    steps = 0
    for contract in contracts:
        # warm the compile/analysis/fusion caches outside the timed region
        Fuzzer(contract.artifact,
               mufuzz_config(iterations=2, rng_seed=7)).run()
        for round_no in range(BLOCK_FUSION_ROUNDS):
            arms = ("off", "on") if round_no % 2 == 0 else ("on", "off")
            elapsed = {}
            for arm in arms:
                fuzzer = Fuzzer(contract.artifact, mufuzz_config(
                    iterations=iters, rng_seed=7,
                    use_state_cache=False,
                    use_block_fusion=arm == "on"))
                start = time.perf_counter()
                result = fuzzer.run()
                elapsed[arm] = time.perf_counter() - start
                total[arm] += elapsed[arm]
                if arm == "on":
                    steps += result.total_steps
            ratios.append(elapsed["off"] / elapsed["on"])
    ratios.sort()
    stats = fusion.fusion_stats()
    blocks = (stats["blocks_fused"] + stats["blocks_interp"]
              + stats["blocks_bailout"])
    return {
        "speedup": round(ratios[len(ratios) // 2], 3) if ratios else None,
        "fused_steps_per_sec": (round(steps / total["on"])
                                if total["on"] else None),
        "table_steps_per_sec": (round(steps / total["off"])
                                if total["off"] else None),
        "blocks_fused_share": (round(stats["blocks_fused"] / blocks, 4)
                               if blocks else 0.0),
        "folded_ops": stats["folded_ops"],
        "threaded_jumps": stats["threaded_jumps"],
        "runtime_bailouts": stats["runtime_bailouts"],
        "iterations": iters,
        "rounds": BLOCK_FUSION_ROUNDS,
        "pairs": len(ratios),
    }


def _profile_breakdown(contracts, iters: int) -> list[str]:
    """``--profile``: run a fused campaign under cProfile and attribute
    interpreter time per opcode handler and per fused/interp block.

    Handler functions are mapped back to mnemonics through
    ``SIMPLE_HANDLERS`` (the factory-made closures all share the name
    ``handler``; their code objects disambiguate), and generated fused
    blocks are recognized by their ``<fusion:digest:mask>`` filenames —
    so the report shows where interpreter time actually lands after
    fusion, not just aggregate throughput.
    """
    import cProfile
    import pstats

    from repro.evm import fusion
    from repro.evm.handlers import SIMPLE_HANDLERS
    from repro.evm.opcodes import mnemonic

    handler_keys = {}
    for op, fn in SIMPLE_HANDLERS.items():
        code = fn.__code__
        key = (code.co_filename, code.co_firstlineno, code.co_name)
        handler_keys.setdefault(key, []).append(mnemonic(op))

    fuzzers = [Fuzzer(c.artifact,
                      mufuzz_config(iterations=iters, rng_seed=7))
               for c in contracts]
    for fuzzer in fuzzers:  # warm compile/analysis/fusion caches
        fuzzer._execute(fuzzer._fresh_seed())
    profile = cProfile.Profile()
    profile.enable()
    for fuzzer in fuzzers:
        fuzzer.run()
    profile.disable()

    per_opcode: dict[str, float] = {}
    per_block: dict[str, float] = {}
    other = 0.0
    stats = pstats.Stats(profile)
    for key, (_cc, _nc, tottime, _ct, _callers) in stats.stats.items():
        names = handler_keys.get(key)
        if names is not None:
            label = "/".join(sorted(names))
            per_opcode[label] = per_opcode.get(label, 0.0) + tottime
        elif key[0].startswith("<fusion:"):
            label = f"{key[2]} {key[0]}"
            per_block[label] = per_block.get(label, 0.0) + tottime
        elif key[2] in ("run", "_run_fused", "_run_table"):
            per_block[key[2]] = per_block.get(key[2], 0.0) + tottime
        else:
            other += tottime

    lines = ["per-opcode handler time (tottime, seconds):"]
    for label, t in sorted(per_opcode.items(), key=lambda kv: -kv[1])[:20]:
        lines.append(f"  {label:<24} {t:8.4f}")
    lines.append("per-block / dispatch-loop time (tottime, seconds):")
    for label, t in sorted(per_block.items(), key=lambda kv: -kv[1])[:20]:
        lines.append(f"  {label:<48} {t:8.4f}")
    lines.append(f"everything else: {other:.4f}s")
    fstats = fusion.fusion_stats()
    lines.append(f"fusion: {fstats['programs']} programs, "
                 f"{fstats['blocks_fused']} fused / "
                 f"{fstats['blocks_interp']} interp / "
                 f"{fstats['blocks_bailout']} bailout blocks, "
                 f"{fstats['folded_ops']} ops folded, "
                 f"{fstats['threaded_jumps']} jumps threaded, "
                 f"{fstats['fused_steps']} steps on the fused tier, "
                 f"{fstats['runtime_bailouts']} runtime bailouts")
    return lines


def run_evm_bench(smoke: bool | None = None) -> dict:
    """Run both workloads and persist the variant entry in BENCH_evm.json."""
    if smoke is None:
        smoke = _smoke()
    contracts = _bench_contracts(
        N_CONTRACTS_SMOKE if smoke else N_CONTRACTS)
    replay = _replay_throughput(
        contracts, REPLAY_ITERS_SMOKE if smoke else REPLAY_ITERS)
    campaign = _campaign_throughput(
        contracts, CAMPAIGN_ITERS_SMOKE if smoke else CAMPAIGN_ITERS)
    overhead = _telemetry_overhead(
        contracts, REPLAY_ITERS_SMOKE if smoke else REPLAY_ITERS)
    cache_iters = STATE_CACHE_ITERS_SMOKE if smoke else STATE_CACHE_ITERS
    d3_sample = generate_d3(count=STATE_CACHE_D3)
    state_cache = {
        "d2": _state_cache_series(contracts, cache_iters),
        "d3": _state_cache_series(d3_sample, cache_iters),
    }
    surface_pruning = _surface_pruning_series(
        contracts, SURFACE_ITERS_SMOKE if smoke else SURFACE_ITERS)
    fusion_iters = (BLOCK_FUSION_ITERS_SMOKE if smoke
                    else BLOCK_FUSION_ITERS)
    block_fusion = {
        "d2": _block_fusion_series(contracts, fusion_iters),
        "d3": _block_fusion_series(generate_d3(count=BLOCK_FUSION_D3),
                                   fusion_iters),
    }
    entry = {
        "replay": replay,
        "campaign": campaign,
        "telemetry_overhead": overhead,
        "state_cache": state_cache,
        "surface_pruning": surface_pruning,
        "block_fusion": block_fusion,
        "contracts": [c.name for c in contracts],
        "smoke": smoke,
    }

    variant = os.environ.get("REPRO_BENCH_EVM_VARIANT", "current")
    try:
        data = json.loads(EVM_BENCH_PATH.read_text())
    except (OSError, ValueError):
        data = {}
    data[variant] = entry
    seed = data.get("seed")
    current = data.get("current")
    if seed and current and not (seed["smoke"] or current["smoke"]):
        data["speedup"] = {
            workload: round(current[workload]["steps_per_sec"]
                            / seed[workload]["steps_per_sec"], 2)
            for workload in ("replay", "campaign")
            if seed[workload]["steps_per_sec"]
        }
    EVM_BENCH_PATH.write_text(json.dumps(data, indent=2, sort_keys=True)
                              + "\n")
    return entry


def test_evm_throughput(report):
    """Pytest entry point: run the bench and report steps/sec."""
    entry = run_evm_bench()
    lines = ["EVM interpreter throughput (d2 corpus)"]
    for workload in ("replay", "campaign"):
        w = entry[workload]
        lines.append(f"  {workload:<9} {w['steps_per_sec']:>10} steps/sec "
                     f"({w['steps']} steps / {w['wall_clock_s']}s, "
                     f"{w['executions']} executions)")
    o = entry["telemetry_overhead"]
    lines.append(f"  telemetry {o['disabled_steps_per_sec']:>10} steps/sec "
                 f"off, {o['enabled_steps_per_sec']} on "
                 f"({o['overhead'] * 100:+.1f}% overhead, "
                 f"budget {o['budget'] * 100:.0f}%)")
    for corpus, series in entry["state_cache"].items():
        lines.append(f"  state-cache [{corpus}] {series['speedup']}x "
                     f"campaign speedup, {series['hit_rate']:.0%} hit "
                     f"rate, {series['steps_saved']} steps fast-forwarded "
                     f"({series['pairs']} pairs)")
    p = entry["surface_pruning"]
    lines.append(f"  surface-pruning {p['speedup']}x campaign speedup, "
                 f"{p['oracles_pruned']} oracle(s) pruned over "
                 f"{p['contracts_with_dead_classes']}/{p['contracts_total']} "
                 f"contracts ({p['pairs']} pairs)")
    for corpus, series in entry["block_fusion"].items():
        lines.append(f"  block-fusion [{corpus}] {series['speedup']}x "
                     f"campaign speedup, "
                     f"{series['blocks_fused_share']:.0%} blocks fused, "
                     f"{series['folded_ops']} ops folded, "
                     f"{series['threaded_jumps']} jumps threaded "
                     f"({series['pairs']} pairs)")
    report("evm_throughput", "\n".join(lines))
    assert entry["replay"]["steps_per_sec"] > 0
    # enabled telemetry must stay within the observability budget of the
    # disabled hot path (best-of-N interleaved rounds absorbs CI noise)
    assert o["overhead"] <= o["budget"], (
        f"telemetry costs {o['overhead']:.1%} of replay throughput "
        f"(budget {o['budget']:.0%})")
    # the state cache must actually win: campaigns with it on may never
    # be slower than with it off (median of paired interleaved rounds —
    # the point estimate itself lands well above 1; the floor is kept
    # loose only to absorb shared-CI noise)
    for corpus, series in entry["state_cache"].items():
        assert series["hit_rate"] > 0, f"{corpus}: cache never hit"
        assert series["speedup"] >= 1.0, (
            f"{corpus}: state cache slowed campaigns down "
            f"({series['speedup']}x)")
    # surface pruning must actually drop oracles on this corpus and must
    # never cost wall-clock (the floor sits a hair under 1.0 only to
    # absorb shared-CI noise on a small effect)
    assert p["oracles_pruned"] > 0, "surface pruned nothing on d2"
    assert p["speedup"] >= 0.97, (
        f"surface pruning slowed campaigns down ({p['speedup']}x)")
    # block fusion must clear its acceptance floor on d2 and must never
    # cost wall-clock on d3 (both medians of paired interleaved rounds)
    fd2 = entry["block_fusion"]["d2"]
    assert fd2["blocks_fused_share"] > 0.5, (
        f"fusion compiled only {fd2['blocks_fused_share']:.0%} of blocks "
        f"to the fused tier")
    assert fd2["speedup"] >= BLOCK_FUSION_TARGET_D2, (
        f"block fusion d2 campaign speedup {fd2['speedup']}x is below the "
        f"{BLOCK_FUSION_TARGET_D2}x acceptance floor")
    fd3 = entry["block_fusion"]["d3"]
    assert fd3["speedup"] >= 1.0, (
        f"block fusion slowed d3 campaigns down ({fd3['speedup']}x)")


if __name__ == "__main__":
    if "--profile" in sys.argv:
        contracts = _bench_contracts(N_CONTRACTS_SMOKE)
        for line in _profile_breakdown(contracts, CAMPAIGN_ITERS_SMOKE
                                       if _smoke() else CAMPAIGN_ITERS):
            print(line)
        raise SystemExit(0)
    result = run_evm_bench()
    print(json.dumps(result, indent=2))
