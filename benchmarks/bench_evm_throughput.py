"""EVM interpreter throughput microbench.

The orchestrator benches (``BENCH_orchestrator.json``) measure jobs/sec at
the campaign-matrix level; this bench measures the layer below them — raw
interpreter steps/sec on the d2 corpus — so regressions in the dispatch
table, the shared code-analysis cache, or the journal-based state reset are
visible even when job-level numbers are dominated by compile/setup cost.

Two workloads, both fully deterministic:

* ``replay``  — one fixed transaction sequence per contract executed over
  and over against a reset state (the ``Fuzzer._execute`` hot path with the
  fuzzing logic factored out: interpreter + state-reset cost only);
* ``campaign`` — a short full MuFuzz campaign per contract (interpreter
  plus mutation/oracle/feedback overhead, i.e. the real per-iteration mix).

Results land in ``BENCH_evm.json`` at the repo root under a variant key
(``REPRO_BENCH_EVM_VARIANT``, default ``current``).  When both a ``seed``
entry and a ``current`` entry exist the file also records the speedup, so
the interpreter's perf trajectory is tracked across PRs alongside the
orchestrator's.

Run directly (``python benchmarks/bench_evm_throughput.py [--smoke]``) or
via pytest; ``REPRO_BENCH_EVM_SMOKE=1`` (or ``--smoke``) shrinks the
workload for CI smoke runs.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

from repro.core.config import mufuzz_config
from repro.core.fuzzer import Fuzzer
from repro.corpus import generate_d2

EVM_BENCH_PATH = Path(__file__).parent.parent / "BENCH_evm.json"

#: contracts drawn from the deterministic d2 corpus
N_CONTRACTS = 6
N_CONTRACTS_SMOKE = 2
#: replay iterations (sequence re-executions) per contract
REPLAY_ITERS = 120
REPLAY_ITERS_SMOKE = 25
#: campaign iterations per contract
CAMPAIGN_ITERS = 120
CAMPAIGN_ITERS_SMOKE = 25


def _smoke() -> bool:
    return (os.environ.get("REPRO_BENCH_EVM_SMOKE") == "1"
            or "--smoke" in sys.argv)


def _bench_contracts(count: int) -> list:
    corpus = generate_d2()
    # Spread across the corpus so several bug templates / gate depths are
    # represented, deterministically.
    stride = max(1, len(corpus) // count)
    return [corpus[i * stride] for i in range(count)]


def _replay_throughput(contracts, iters: int) -> dict:
    """Fixed-sequence replay: interpreter + per-iteration state reset."""
    steps = 0
    elapsed = 0.0
    executions = 0
    for contract in contracts:
        fuzzer = Fuzzer(contract.artifact,
                        mufuzz_config(iterations=iters, rng_seed=7))
        seed = fuzzer._fresh_seed()
        start = time.perf_counter()
        for _ in range(iters):
            trace = fuzzer._execute(seed)
            steps += trace.steps
        elapsed += time.perf_counter() - start
        executions += iters
    return {"steps": steps, "wall_clock_s": round(elapsed, 3),
            "executions": executions,
            "steps_per_sec": round(steps / elapsed) if elapsed else None}


def _campaign_throughput(contracts, iters: int) -> dict:
    """Short full campaigns: the realistic per-iteration instruction mix."""
    steps = 0
    elapsed = 0.0
    executions = 0
    for contract in contracts:
        fuzzer = Fuzzer(contract.artifact,
                        mufuzz_config(iterations=iters, rng_seed=7))
        start = time.perf_counter()
        result = fuzzer.run()
        elapsed += time.perf_counter() - start
        steps += result.total_steps
        executions += result.iterations
    return {"steps": steps, "wall_clock_s": round(elapsed, 3),
            "executions": executions,
            "steps_per_sec": round(steps / elapsed) if elapsed else None}


def run_evm_bench(smoke: bool | None = None) -> dict:
    """Run both workloads and persist the variant entry in BENCH_evm.json."""
    if smoke is None:
        smoke = _smoke()
    contracts = _bench_contracts(
        N_CONTRACTS_SMOKE if smoke else N_CONTRACTS)
    replay = _replay_throughput(
        contracts, REPLAY_ITERS_SMOKE if smoke else REPLAY_ITERS)
    campaign = _campaign_throughput(
        contracts, CAMPAIGN_ITERS_SMOKE if smoke else CAMPAIGN_ITERS)
    entry = {
        "replay": replay,
        "campaign": campaign,
        "contracts": [c.name for c in contracts],
        "smoke": smoke,
    }

    variant = os.environ.get("REPRO_BENCH_EVM_VARIANT", "current")
    try:
        data = json.loads(EVM_BENCH_PATH.read_text())
    except (OSError, ValueError):
        data = {}
    data[variant] = entry
    seed = data.get("seed")
    current = data.get("current")
    if seed and current and not (seed["smoke"] or current["smoke"]):
        data["speedup"] = {
            workload: round(current[workload]["steps_per_sec"]
                            / seed[workload]["steps_per_sec"], 2)
            for workload in ("replay", "campaign")
            if seed[workload]["steps_per_sec"]
        }
    EVM_BENCH_PATH.write_text(json.dumps(data, indent=2, sort_keys=True)
                              + "\n")
    return entry


def test_evm_throughput(report):
    """Pytest entry point: run the bench and report steps/sec."""
    entry = run_evm_bench()
    lines = ["EVM interpreter throughput (d2 corpus)"]
    for workload in ("replay", "campaign"):
        w = entry[workload]
        lines.append(f"  {workload:<9} {w['steps_per_sec']:>10} steps/sec "
                     f"({w['steps']} steps / {w['wall_clock_s']}s, "
                     f"{w['executions']} executions)")
    report("evm_throughput", "\n".join(lines))
    assert entry["replay"]["steps_per_sec"] > 0


if __name__ == "__main__":
    result = run_evm_bench()
    print(json.dumps(result, indent=2))
