"""Oracle-overhead microbench: what detection costs per transaction.

The streaming oracle bus derives the machine's event-materialization mask
from the subscribed oracles, so restricting a campaign's bug classes
should *reduce* per-transaction cost — unsubscribed event kinds are never
allocated, and events are dispatched once to their subscribers instead of
every oracle re-scanning every receipt.  This bench pins that claim to a
number on the d2 corpus, with three oracle configurations over the same
fixed-sequence replay workload (interpreter + state reset + detection):

* ``all``    — all nine oracles (the default campaign),
* ``single`` — one oracle (integer overflow), the restricted-campaign case,
* ``none``   — no oracles (coverage-only; the detection-free floor).

Results land in ``BENCH_evm.json`` under ``oracle_overhead`` so the
subscription-filtering win rides in the same perf-trajectory artifact as
the interpreter numbers.  Run directly
(``python benchmarks/bench_oracle_overhead.py [--smoke]``) or via pytest;
``REPRO_BENCH_EVM_SMOKE=1`` shrinks the workload for CI smoke runs.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

from repro.core.config import mufuzz_config
from repro.core.fuzzer import Fuzzer
from repro.corpus import generate_d2

EVM_BENCH_PATH = Path(__file__).parent.parent / "BENCH_evm.json"

N_CONTRACTS = 6
N_CONTRACTS_SMOKE = 2
REPLAY_ITERS = 120
REPLAY_ITERS_SMOKE = 25
#: repetitions per variant; wall clock is best-of so a scheduler blip on
#: a loaded (CI) machine cannot flip the overhead comparison
REPETITIONS = 3

#: oracle selections benched (config.bug_classes values)
VARIANTS = {
    "all": None,
    "single": ("IO",),
    "none": (),
}


def _smoke() -> bool:
    return (os.environ.get("REPRO_BENCH_EVM_SMOKE") == "1"
            or "--smoke" in sys.argv)


def _bench_contracts(count: int) -> list:
    corpus = generate_d2()
    stride = max(1, len(corpus) // count)
    return [corpus[i * stride] for i in range(count)]


def _replay_cost(contracts, iters: int, bug_classes) -> dict:
    """Fixed-sequence replay with one oracle selection; per-tx cost.

    Best-of-``REPETITIONS`` wall clock: each repetition rebuilds the
    fuzzers and replays the same deterministic workload, and the fastest
    repetition is reported — step/transaction/finding counts are
    identical across repetitions by construction."""
    best = None
    for _ in range(REPETITIONS):
        transactions = 0
        steps = 0
        findings = 0
        elapsed = 0.0
        for contract in contracts:
            fuzzer = Fuzzer(contract.artifact,
                            mufuzz_config(iterations=iters, rng_seed=7,
                                          bug_classes=bug_classes))
            seed = fuzzer._fresh_seed()
            start = time.perf_counter()
            for _ in range(iters):
                trace = fuzzer._execute(seed)
                steps += trace.steps
            elapsed += time.perf_counter() - start
            transactions += fuzzer.transactions
            findings += len(fuzzer.collector.findings)
        if best is None or elapsed < best[0]:
            best = (elapsed, transactions, steps, findings)
    elapsed, transactions, steps, findings = best
    return {
        "transactions": transactions,
        "steps": steps,
        "findings": findings,
        "wall_clock_s": round(elapsed, 3),
        "us_per_tx": (round(elapsed / transactions * 1e6, 2)
                      if transactions else None),
    }


def run_oracle_overhead_bench(smoke: bool | None = None) -> dict:
    """Bench every oracle selection; persist under ``oracle_overhead``."""
    if smoke is None:
        smoke = _smoke()
    contracts = _bench_contracts(
        N_CONTRACTS_SMOKE if smoke else N_CONTRACTS)
    iters = REPLAY_ITERS_SMOKE if smoke else REPLAY_ITERS
    entry: dict = {"smoke": smoke,
                   "contracts": [c.name for c in contracts]}
    for label, bug_classes in VARIANTS.items():
        entry[label] = _replay_cost(contracts, iters, bug_classes)

    base = entry["all"]["us_per_tx"]
    if base:
        entry["speedup_vs_all"] = {
            label: round(base / entry[label]["us_per_tx"], 2)
            for label in ("single", "none")
            if entry[label]["us_per_tx"]
        }

    try:
        data = json.loads(EVM_BENCH_PATH.read_text())
    except (OSError, ValueError):
        data = {}
    data["oracle_overhead"] = entry
    EVM_BENCH_PATH.write_text(json.dumps(data, indent=2, sort_keys=True)
                              + "\n")
    return entry


def test_oracle_overhead(report):
    """Pytest entry point: run the bench and report per-tx costs."""
    entry = run_oracle_overhead_bench()
    lines = ["oracle overhead per transaction (d2 replay workload)"]
    for label in VARIANTS:
        cost = entry[label]
        lines.append(
            f"  {label:<7} {cost['us_per_tx']:>8} us/tx "
            f"({cost['transactions']} txs, {cost['findings']} finding "
            f"keys, {cost['wall_clock_s']}s)")
    if "speedup_vs_all" in entry:
        lines.append(f"  speedup vs all: {entry['speedup_vs_all']}")
    report("oracle_overhead", "\n".join(lines))
    # detection must never be free-floating overhead: the restricted and
    # oracle-free configurations may not be slower than running all nine
    # (best-of-N wall clock; 10% headroom for shared-runner jitter)
    assert entry["single"]["us_per_tx"] <= entry["all"]["us_per_tx"] * 1.10
    assert entry["none"]["us_per_tx"] <= entry["all"]["us_per_tx"] * 1.10


if __name__ == "__main__":
    result = run_oracle_overhead_bench()
    print(json.dumps(result, indent=2))
